//! A SQL front end for the paper's query dialect.
//!
//! Every query in the paper is written in a small SQL subset (Q0–Q3,
//! §2.2/§2.4):
//!
//! ```sql
//! select A, tb, count(*) as cnt
//! from R
//! group by A, time/60 as tb
//! ```
//!
//! This module parses that dialect — `SELECT` with `count(*)` /
//! `sum|avg|min|max(col)` aggregates, `FROM`, a conjunctive `WHERE`,
//! `GROUP BY` with an optional `time/N` epoch term, and a
//! `HAVING count(*) > N` clause — against a [`Schema`], and compiles a
//! *set* of such queries into the engine configuration they share: the
//! grouping attribute sets, the common filter, the epoch length, the
//! metric attribute and the per-query HAVING thresholds.
//!
//! Keywords and identifiers are case-insensitive; identifiers resolve
//! against the schema's attribute names or the positional letters
//! `A, B, C, ...`.

use crate::engine::{EngineOptions, ValueSource};
use msa_stream::{AttrSet, CmpOp, Filter, Schema};
use std::fmt;

/// An aggregate function in the select list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFn {
    /// `count(*)`
    Count,
    /// `sum(col)`
    Sum(u8),
    /// `avg(col)`
    Avg(u8),
    /// `min(col)`
    Min(u8),
    /// `max(col)`
    Max(u8),
}

impl AggFn {
    /// The metric attribute this aggregate reads, if any.
    pub fn metric_attr(&self) -> Option<u8> {
        match *self {
            AggFn::Count => None,
            AggFn::Sum(a) | AggFn::Avg(a) | AggFn::Min(a) | AggFn::Max(a) => Some(a),
        }
    }
}

/// One parsed aggregation query.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedQuery {
    /// Grouping attributes (excluding the `time/N` epoch term).
    pub group_by: AttrSet,
    /// Aggregates in the select list.
    pub aggregates: Vec<AggFn>,
    /// Conjunctive `WHERE` filter.
    pub filter: Filter,
    /// Epoch length in seconds from `group by ..., time/N` (None = no
    /// epoch term).
    pub epoch_secs: Option<u64>,
    /// `HAVING count(*) > N` threshold.
    pub having_count_over: Option<u64>,
    /// The stream relation named in `FROM`.
    pub relation: String,
}

/// Parse errors with byte offsets into the SQL text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical or grammatical problem.
    Syntax {
        /// Byte offset.
        at: usize,
        /// What was expected.
        expected: &'static str,
    },
    /// An identifier that is neither a schema column nor `A..H`.
    UnknownColumn(String),
    /// A selected (non-aggregate) column missing from `GROUP BY`.
    NotGrouped(String),
    /// Several queries disagree on something they must share.
    Incompatible(&'static str),
    /// Aggregates reference more than one metric attribute (the LFTA
    /// entry carries a single metric).
    MultipleMetrics,
    /// A metric attribute also appears in `GROUP BY` (it would be
    /// constant within each group).
    MetricGrouped(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Syntax { at, expected } => {
                write!(f, "syntax error at byte {at}: expected {expected}")
            }
            SqlError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            SqlError::NotGrouped(c) => {
                write!(f, "selected column `{c}` does not appear in GROUP BY")
            }
            SqlError::Incompatible(what) => {
                write!(f, "queries must agree on {what} to share one LFTA")
            }
            SqlError::MultipleMetrics => {
                write!(f, "aggregates reference more than one metric attribute")
            }
            SqlError::MetricGrouped(c) => {
                write!(f, "metric column `{c}` also appears in GROUP BY")
            }
        }
    }
}

impl std::error::Error for SqlError {}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Number(u64),
    Star,
    Comma,
    LParen,
    RParen,
    Slash,
    Op(CmpOp),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Tokenizes the whole input, recording each token's start offset.
    fn tokenize(mut self) -> Result<Vec<(usize, Token)>, SqlError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Ok(out);
            }
            let at = self.pos;
            let b = self.src[self.pos];
            let token = match b {
                b'*' => {
                    self.pos += 1;
                    Token::Star
                }
                b',' => {
                    self.pos += 1;
                    Token::Comma
                }
                b'(' => {
                    self.pos += 1;
                    Token::LParen
                }
                b')' => {
                    self.pos += 1;
                    Token::RParen
                }
                b'/' => {
                    self.pos += 1;
                    Token::Slash
                }
                b'=' => {
                    self.pos += 1;
                    Token::Op(CmpOp::Eq)
                }
                b'!' if self.src.get(self.pos + 1) == Some(&b'=') => {
                    self.pos += 2;
                    Token::Op(CmpOp::Ne)
                }
                b'<' => {
                    if self.src.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Token::Op(CmpOp::Le)
                    } else if self.src.get(self.pos + 1) == Some(&b'>') {
                        self.pos += 2;
                        Token::Op(CmpOp::Ne)
                    } else {
                        self.pos += 1;
                        Token::Op(CmpOp::Lt)
                    }
                }
                b'>' => {
                    if self.src.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Token::Op(CmpOp::Ge)
                    } else {
                        self.pos += 1;
                        Token::Op(CmpOp::Gt)
                    }
                }
                b'0'..=b'9' => {
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| {
                        SqlError::Syntax {
                            at,
                            expected: "number",
                        }
                    })?;
                    Token::Number(text.parse().map_err(|_| SqlError::Syntax {
                        at,
                        expected: "number",
                    })?)
                }
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    let start = self.pos;
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| {
                        SqlError::Syntax {
                            at,
                            expected: "identifier",
                        }
                    })?;
                    Token::Ident(text.to_ascii_lowercase())
                }
                _ => {
                    return Err(SqlError::Syntax {
                        at,
                        expected: "token",
                    })
                }
            };
            out.push((at, token));
        }
    }
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    schema: &'a Schema,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(a, _)| *a)
            .unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<(), SqlError> {
        match self.next() {
            Some(Token::Ident(w)) if w == kw => Ok(()),
            _ => Err(SqlError::Syntax {
                at: self.at(),
                expected: kw,
            }),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(w)) if w == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: Token, expected: &'static str) -> Result<(), SqlError> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            _ => Err(SqlError::Syntax {
                at: self.at(),
                expected,
            }),
        }
    }

    fn expect_ident(&mut self, expected: &'static str) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(w)) => Ok(w),
            _ => Err(SqlError::Syntax {
                at: self.at(),
                expected,
            }),
        }
    }

    fn expect_number(&mut self, expected: &'static str) -> Result<u64, SqlError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            _ => Err(SqlError::Syntax {
                at: self.at(),
                expected,
            }),
        }
    }

    /// Resolves a column name against the schema (or `a..h` letters).
    fn resolve(&self, name: &str) -> Result<u8, SqlError> {
        for i in 0..self.schema.arity() {
            if let Some(n) = self.schema.name(i as u8) {
                if n.eq_ignore_ascii_case(name) {
                    return Ok(i as u8);
                }
            }
        }
        // Positional letters a..h.
        if name.len() == 1 {
            let c = name.as_bytes()[0];
            if c.is_ascii_lowercase() && (c - b'a') < msa_stream::MAX_ATTRS as u8 {
                return Ok(c - b'a');
            }
        }
        Err(SqlError::UnknownColumn(name.to_string()))
    }

    /// `[ 'as' ident ]`
    fn skip_alias(&mut self) -> Result<(), SqlError> {
        if self.try_keyword("as") {
            self.expect_ident("alias")?;
        }
        Ok(())
    }

    /// One select item: a column, `count(*)` or `fn(col)`.
    fn parse_select_item(
        &mut self,
        plain_cols: &mut Vec<String>,
        aggs: &mut Vec<AggFn>,
    ) -> Result<(), SqlError> {
        let name = self.expect_ident("column or aggregate")?;
        let is_agg_fn = matches!(name.as_str(), "count" | "sum" | "avg" | "min" | "max");
        if is_agg_fn && self.peek() == Some(&Token::LParen) {
            self.pos += 1; // consume '('
            let agg = if name == "count" {
                self.expect_token(Token::Star, "*")?;
                AggFn::Count
            } else {
                let col = self.expect_ident("metric column")?;
                let attr = self.resolve(&col)?;
                match name.as_str() {
                    "sum" => AggFn::Sum(attr),
                    "avg" => AggFn::Avg(attr),
                    "min" => AggFn::Min(attr),
                    "max" => AggFn::Max(attr),
                    _ => unreachable!("matched above"),
                }
            };
            self.expect_token(Token::RParen, ")")?;
            self.skip_alias()?;
            aggs.push(agg);
        } else {
            self.skip_alias()?;
            plain_cols.push(name);
        }
        Ok(())
    }

    fn parse_query(&mut self, relation_hint: Option<&str>) -> Result<ParsedQuery, SqlError> {
        self.expect_keyword("select")?;
        let mut plain_cols = Vec::new();
        let mut aggregates = Vec::new();
        loop {
            self.parse_select_item(&mut plain_cols, &mut aggregates)?;
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect_keyword("from")?;
        let relation = self.expect_ident("relation name")?;
        if let Some(hint) = relation_hint {
            if relation != hint {
                return Err(SqlError::Incompatible("the FROM relation"));
            }
        }

        // WHERE: conjunction of `col op number`.
        let mut filter = Filter::all();
        if self.try_keyword("where") {
            loop {
                let col = self.expect_ident("filter column")?;
                let attr = self.resolve(&col)?;
                let op = match self.next() {
                    Some(Token::Op(op)) => op,
                    _ => {
                        return Err(SqlError::Syntax {
                            at: self.at(),
                            expected: "comparison operator",
                        })
                    }
                };
                let value = self.expect_number("filter constant")?;
                filter = filter.and(attr, op, value as u32);
                if !self.try_keyword("and") {
                    break;
                }
            }
        }

        // GROUP BY: columns and at most one `time/N [as alias]`.
        self.expect_keyword("group")?;
        self.expect_keyword("by")?;
        let mut group_by = AttrSet::EMPTY;
        let mut grouped_names = Vec::new();
        let mut epoch_secs = None;
        let mut time_alias: Option<String> = None;
        loop {
            let name = self.expect_ident("grouping column")?;
            if name == "time" {
                self.expect_token(Token::Slash, "/ after time")?;
                let n = self.expect_number("epoch length")?;
                if n == 0 {
                    return Err(SqlError::Syntax {
                        at: self.at(),
                        expected: "non-zero epoch length",
                    });
                }
                epoch_secs = Some(n);
                if self.try_keyword("as") {
                    time_alias = Some(self.expect_ident("epoch alias")?);
                }
            } else {
                let attr = self.resolve(&name)?;
                group_by = group_by.union(AttrSet::single(attr));
                grouped_names.push(name);
            }
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }

        // HAVING count(*) > N.
        let mut having_count_over = None;
        if self.try_keyword("having") {
            self.expect_keyword("count")?;
            self.expect_token(Token::LParen, "(")?;
            self.expect_token(Token::Star, "*")?;
            self.expect_token(Token::RParen, ")")?;
            match self.next() {
                Some(Token::Op(CmpOp::Gt)) => {}
                _ => {
                    return Err(SqlError::Syntax {
                        at: self.at(),
                        expected: "> in HAVING count(*) > N",
                    })
                }
            }
            having_count_over = Some(self.expect_number("HAVING threshold")?);
        }

        if self.pos != self.tokens.len() {
            return Err(SqlError::Syntax {
                at: self.at(),
                expected: "end of query",
            });
        }

        // Semantic checks: selected plain columns must be grouped; the
        // aggregates' metric must be a single non-grouped attribute.
        for col in &plain_cols {
            // The epoch term's alias (e.g. `tb` in Q0) may be selected.
            if time_alias.as_deref() == Some(col.as_str()) {
                continue;
            }
            let attr = self.resolve(col)?;
            if !group_by.contains(attr) {
                return Err(SqlError::NotGrouped(col.clone()));
            }
        }
        let mut metric: Option<u8> = None;
        for agg in &aggregates {
            if let Some(a) = agg.metric_attr() {
                match metric {
                    None => metric = Some(a),
                    Some(m) if m == a => {}
                    Some(_) => return Err(SqlError::MultipleMetrics),
                }
                if group_by.contains(a) {
                    let name = self
                        .schema
                        .name(a)
                        .map(str::to_string)
                        .unwrap_or_else(|| ((b'A' + a) as char).to_string());
                    return Err(SqlError::MetricGrouped(name));
                }
            }
        }
        if group_by.is_empty() {
            return Err(SqlError::Syntax {
                at: usize::MAX,
                expected: "at least one grouping column",
            });
        }

        Ok(ParsedQuery {
            group_by,
            aggregates,
            filter,
            epoch_secs,
            having_count_over,
            relation,
        })
    }
}

/// Parses one query against `schema`.
pub fn parse_query(sql: &str, schema: &Schema) -> Result<ParsedQuery, SqlError> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut p = Parser {
        tokens,
        pos: 0,
        schema,
    };
    p.parse_query(None)
}

/// A set of parsed queries compiled to engine settings.
#[derive(Clone, Debug)]
pub struct QuerySet {
    /// The parsed queries, in input order.
    pub queries: Vec<ParsedQuery>,
    /// The grouping attribute sets, deduplicated, in input order.
    pub group_bys: Vec<AttrSet>,
    /// The shared filter.
    pub filter: Filter,
    /// The shared epoch length in seconds (None = single epoch).
    pub epoch_secs: Option<u64>,
    /// The shared metric attribute, if any aggregate needs one.
    pub metric: Option<u8>,
}

impl QuerySet {
    /// Parses several queries and checks they can share one LFTA: same
    /// `FROM` relation, same `WHERE`, same epoch, one metric attribute.
    pub fn parse(sqls: &[&str], schema: &Schema) -> Result<QuerySet, SqlError> {
        assert!(!sqls.is_empty(), "need at least one query");
        let mut queries = Vec::with_capacity(sqls.len());
        for sql in sqls {
            queries.push(parse_query(sql, schema)?);
        }
        let first = &queries[0];
        let mut metric: Option<u8> = None;
        for q in &queries {
            if q.relation != first.relation {
                return Err(SqlError::Incompatible("the FROM relation"));
            }
            if q.filter != first.filter {
                return Err(SqlError::Incompatible("the WHERE clause"));
            }
            if q.epoch_secs != first.epoch_secs {
                return Err(SqlError::Incompatible("the epoch length"));
            }
            for agg in &q.aggregates {
                if let Some(a) = agg.metric_attr() {
                    match metric {
                        None => metric = Some(a),
                        Some(m) if m == a => {}
                        Some(_) => return Err(SqlError::MultipleMetrics),
                    }
                }
            }
        }
        let mut group_bys = Vec::new();
        for q in &queries {
            if !group_bys.contains(&q.group_by) {
                group_bys.push(q.group_by);
            }
        }
        Ok(QuerySet {
            group_bys,
            filter: first.filter.clone(),
            epoch_secs: first.epoch_secs,
            metric,
            queries,
        })
    }

    /// Applies the shared settings to engine options (filter, epoch,
    /// metric source).
    pub fn configure(&self, mut opts: EngineOptions) -> EngineOptions {
        opts.filter = self.filter.clone();
        if let Some(secs) = self.epoch_secs {
            opts.epoch_micros = secs.saturating_mul(1_000_000).max(1);
        }
        opts.value_source = match self.metric {
            Some(a) => ValueSource::Attr(a),
            None => ValueSource::None,
        };
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::packet_headers() // srcIP, srcPort, dstIP, dstPort
    }

    #[test]
    fn parses_paper_q0() {
        let q = parse_query(
            "select srcIP, tb, count(*) as cnt from R group by srcIP, time/60 as tb",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.group_by, AttrSet::parse("A").unwrap());
        assert_eq!(q.aggregates, vec![AggFn::Count]);
        assert_eq!(q.epoch_secs, Some(60));
        assert!(q.filter.is_pass_all());
        assert_eq!(q.relation, "r");
    }

    #[test]
    fn parses_paper_q1_q2_q3() {
        for (sql, want) in [
            ("select srcIP, count(*) from R group by srcIP", "A"),
            ("select srcPort, count(*) from R group by srcPort", "B"),
            ("select dstIP, count(*) from R group by dstIP", "C"),
        ] {
            let q = parse_query(sql, &schema()).unwrap();
            assert_eq!(q.group_by, AttrSet::parse(want).unwrap(), "{sql}");
        }
    }

    #[test]
    fn parses_intro_avg_packet_length() {
        // "for every destination IP, destination port and 5 minute
        // interval, report the average packet length" — pktLen in slot E.
        let schema = Schema::new(["srcIP", "srcPort", "dstIP", "dstPort", "pktLen"]);
        let q = parse_query(
            "select dstIP, dstPort, avg(pktLen) from packets \
             group by dstIP, dstPort, time/300",
            &schema,
        )
        .unwrap();
        assert_eq!(q.group_by, AttrSet::parse("CD").unwrap());
        assert_eq!(q.aggregates, vec![AggFn::Avg(4)]);
        assert_eq!(q.epoch_secs, Some(300));
    }

    #[test]
    fn parses_where_and_having() {
        let q = parse_query(
            "select srcIP, count(*) from R \
             where dstPort = 80 and srcPort >= 1024 \
             group by srcIP having count(*) > 100",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.filter.conjuncts().len(), 2);
        assert_eq!(q.having_count_over, Some(100));
        assert_eq!(q.filter.to_string(), "D = 80 AND B >= 1024");
    }

    #[test]
    fn positional_letters_resolve() {
        let q = parse_query("select a, b, count(*) from R group by a, b", &schema()).unwrap();
        assert_eq!(q.group_by, AttrSet::parse("AB").unwrap());
    }

    #[test]
    fn rejects_unknown_column() {
        assert!(matches!(
            parse_query("select bogus, count(*) from R group by bogus", &schema()),
            Err(SqlError::UnknownColumn(_))
        ));
    }

    #[test]
    fn rejects_ungrouped_select_column() {
        assert!(matches!(
            parse_query(
                "select srcIP, dstIP, count(*) from R group by srcIP",
                &schema()
            ),
            Err(SqlError::NotGrouped(_))
        ));
    }

    #[test]
    fn rejects_grouped_metric() {
        let schema = Schema::new(["srcIP", "len"]);
        assert!(matches!(
            parse_query(
                "select srcIP, len, sum(len) from R group by srcIP, len",
                &schema
            ),
            Err(SqlError::MetricGrouped(_))
        ));
    }

    #[test]
    fn rejects_two_metrics() {
        let schema = Schema::new(["srcIP", "len", "ttl"]);
        assert!(matches!(
            parse_query(
                "select srcIP, sum(len), avg(ttl) from R group by srcIP",
                &schema
            ),
            Err(SqlError::MultipleMetrics)
        ));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse_query("select srcIP count(*) from R group by srcIP", &schema()).is_err());
        assert!(parse_query(
            "select srcIP, count(*) from R group by srcIP extra",
            &schema()
        )
        .is_err());
        assert!(parse_query("select count(*) from R group by time/0", &schema()).is_err());
        assert!(parse_query("", &schema()).is_err());
    }

    #[test]
    fn query_set_shares_settings() {
        let qs = QuerySet::parse(
            &[
                "select srcIP, srcPort, count(*) from R where dstPort < 1024 \
                 group by srcIP, srcPort, time/60",
                "select dstIP, dstPort, count(*) from R where dstPort < 1024 \
                 group by dstIP, dstPort, time/60",
            ],
            &schema(),
        )
        .unwrap();
        assert_eq!(qs.group_bys.len(), 2);
        assert_eq!(qs.epoch_secs, Some(60));
        let opts = qs.configure(EngineOptions::new(10_000.0));
        assert_eq!(opts.epoch_micros, 60_000_000);
        assert_eq!(opts.filter.conjuncts().len(), 1);
        assert_eq!(opts.value_source, ValueSource::None);
    }

    #[test]
    fn query_set_rejects_mismatched_where() {
        let err = QuerySet::parse(
            &[
                "select srcIP, count(*) from R where dstPort = 80 group by srcIP",
                "select dstIP, count(*) from R group by dstIP",
            ],
            &schema(),
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Incompatible("the WHERE clause")));
    }

    #[test]
    fn query_set_rejects_mismatched_epochs() {
        let err = QuerySet::parse(
            &[
                "select srcIP, count(*) from R group by srcIP, time/60",
                "select dstIP, count(*) from R group by dstIP, time/300",
            ],
            &schema(),
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Incompatible("the epoch length")));
    }

    #[test]
    fn query_set_picks_up_metric() {
        let schema = Schema::new(["srcIP", "srcPort", "dstIP", "dstPort", "pktLen"]);
        let qs = QuerySet::parse(
            &[
                "select dstIP, avg(pktLen) from R group by dstIP",
                "select srcIP, count(*) from R group by srcIP",
            ],
            &schema,
        )
        .unwrap();
        assert_eq!(qs.metric, Some(4));
        let opts = qs.configure(EngineOptions::new(5_000.0));
        assert_eq!(opts.value_source, ValueSource::Attr(4));
    }

    #[test]
    fn duplicate_group_bys_dedupe() {
        let qs = QuerySet::parse(
            &[
                "select srcIP, count(*) from R group by srcIP",
                "select srcIP, max(dstPort) from R group by srcIP",
            ],
            &schema(),
        )
        .unwrap();
        assert_eq!(qs.group_bys.len(), 1);
        assert_eq!(qs.queries.len(), 2);
    }
}
