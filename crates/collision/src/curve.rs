//! The precomputed collision-rate curve and its regressions (§4.4).
//!
//! The paper observes the precise rate depends (almost) only on
//! `r = g/b`, precomputes the curve, splits it into 6 intervals with a
//! two-dimensional (quadratic) regression per interval at ≤ 5 % max
//! relative error (Fig. 7), and fits the low-rate region `x < 0.4` with a
//! straight line `x = 0.0267 + 0.354·r` (Fig. 8, Eq. 16).

use crate::models::asymptotic;

/// Least-squares straight-line fit `x = alpha + mu·r`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Intercept.
    pub alpha: f64,
    /// Slope.
    pub mu: f64,
}

impl LinearFit {
    /// Fits `x = α + µ·r` to `(r, x)` points by ordinary least squares.
    ///
    /// # Panics
    /// Panics on fewer than two points or zero variance in `r`.
    pub fn fit(points: &[(f64, f64)]) -> LinearFit {
        assert!(points.len() >= 2, "need at least two points");
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        assert!(denom.abs() > 1e-12, "degenerate r values");
        let mu = (n * sxy - sx * sy) / denom;
        let alpha = (sy - mu * sx) / n;
        LinearFit { alpha, mu }
    }

    /// Reproduces the paper's Eq. 16 fit: sample the asymptotic curve on
    /// the region where `x ≤ x_max` (the paper uses 0.4) and fit a line.
    pub fn fit_low_region(x_max: f64) -> LinearFit {
        // Invert x(r) ≤ x_max by scanning; the curve is monotone.
        let mut r_max = 0.0;
        let mut r = 0.005;
        while asymptotic(r) <= x_max && r < 100.0 {
            r_max = r;
            r += 0.005;
        }
        let points: Vec<(f64, f64)> = (1..=200)
            .map(|i| {
                let r = r_max * i as f64 / 200.0;
                (r, asymptotic(r))
            })
            .collect();
        LinearFit::fit(&points)
    }

    /// Evaluates the fit.
    #[inline]
    pub fn eval(&self, r: f64) -> f64 {
        (self.alpha + self.mu * r).clamp(0.0, 1.0)
    }

    /// Average relative error against the asymptotic curve over `(0, r_max]`,
    /// restricted to points where the true rate exceeds `x_floor`.
    ///
    /// The floor mirrors how the paper reads Fig. 8: relative error near
    /// `r = 0` is dominated by the fixed intercept `α` while the true
    /// rate vanishes, which is irrelevant for the optimizer (tables with
    /// near-zero collision rates contribute almost nothing to cost).
    pub fn avg_relative_error(&self, r_max: f64, x_floor: f64) -> f64 {
        let n = 200;
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 1..=n {
            let r = r_max * i as f64 / n as f64;
            let truth = asymptotic(r);
            if truth > x_floor {
                total += (self.eval(r) - truth).abs() / truth;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// One interval of the piecewise regression: quadratic
/// `x = c0 + c1·r + c2·r²` valid on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct CurveSegment {
    /// Inclusive lower bound of the interval.
    pub lo: f64,
    /// Exclusive upper bound of the interval.
    pub hi: f64,
    /// Polynomial coefficients `[c0, c1, c2]`.
    pub coef: [f64; 3],
}

impl CurveSegment {
    #[inline]
    fn eval(&self, r: f64) -> f64 {
        self.coef[0] + self.coef[1] * r + self.coef[2] * r * r
    }
}

/// The paper's precomputed curve: 6 quadratic segments over `(0, 50]`
/// with ≤ 5 % maximum relative error per segment (Fig. 7).
///
/// Above the last interval the curve saturates towards 1 using the
/// asymptotic form (which costs one `exp`, still far cheaper than the
/// Eq. 13 sum the regression was designed to avoid).
#[derive(Clone, Debug)]
pub struct PiecewiseCurve {
    segments: Vec<CurveSegment>,
}

impl PiecewiseCurve {
    /// Builds the curve with the paper's 6 intervals over `(0, 50]`.
    pub fn fit_default() -> PiecewiseCurve {
        // Interval boundaries chosen denser where curvature is high.
        PiecewiseCurve::fit(&[0.0, 0.6, 1.5, 3.0, 6.0, 15.0, 50.0])
    }

    /// Fits quadratic segments between consecutive `boundaries`.
    ///
    /// # Panics
    /// Panics on fewer than two boundaries or non-increasing boundaries.
    pub fn fit(boundaries: &[f64]) -> PiecewiseCurve {
        assert!(boundaries.len() >= 2);
        assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        let segments = boundaries
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                let pts: Vec<(f64, f64)> = (0..=64)
                    .map(|i| {
                        let r = lo + (hi - lo) * i as f64 / 64.0;
                        (r, asymptotic(r))
                    })
                    .collect();
                CurveSegment {
                    lo,
                    hi,
                    coef: fit_quadratic(&pts),
                }
            })
            .collect();
        PiecewiseCurve { segments }
    }

    /// Evaluates the regression at `r = g/b`.
    pub fn eval(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        for seg in &self.segments {
            if r < seg.hi {
                return seg.eval(r).clamp(0.0, 1.0);
            }
        }
        asymptotic(r)
    }

    /// Maximum relative error against the asymptotic curve on `[lo, hi]`
    /// (ignoring points where the curve is below `1e-6`).
    pub fn max_relative_error(&self, lo: f64, hi: f64) -> f64 {
        let n = 2000;
        let mut worst = 0.0f64;
        for i in 0..=n {
            let r = lo + (hi - lo) * i as f64 / n as f64;
            let truth = asymptotic(r);
            if truth > 1e-6 {
                worst = worst.max((self.eval(r) - truth).abs() / truth);
            }
        }
        worst
    }

    /// The fitted segments.
    pub fn segments(&self) -> &[CurveSegment] {
        &self.segments
    }
}

impl crate::CollisionModel for PiecewiseCurve {
    fn rate(&self, g: f64, b: f64) -> f64 {
        if g <= 0.0 {
            return 0.0;
        }
        self.eval(g / b.max(1.0))
    }
}

/// Least-squares quadratic fit returning `[c0, c1, c2]`.
fn fit_quadratic(points: &[(f64, f64)]) -> [f64; 3] {
    // Normal equations for the 3x3 system Σ (c0 + c1 r + c2 r² − x)² min.
    let mut s = [0.0f64; 5]; // Σ r^0..r^4
    let mut t = [0.0f64; 3]; // Σ x·r^0..r^2
    for &(r, x) in points {
        let mut rp = 1.0;
        for sk in s.iter_mut().take(3) {
            *sk += rp;
            rp *= r;
        }
        // continue powers 3, 4
        s[3] += r * r * r;
        s[4] += r * r * r * r;
        let mut rp = 1.0;
        for tk in t.iter_mut() {
            *tk += x * rp;
            rp *= r;
        }
    }
    let a = [[s[0], s[1], s[2]], [s[1], s[2], s[3]], [s[2], s[3], s[4]]];
    solve3(a, t)
}

/// Solves a 3×3 linear system by Gaussian elimination with partial
/// pivoting.
fn solve3(mut a: [[f64; 3]; 3], mut b: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        // Pivot.
        let piv = (col..3)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap_or(col);
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        assert!(d.abs() > 1e-12, "singular system");
        for row in (col + 1)..3 {
            let f = a[row][col] / d;
            let pivot_row = a[col];
            for (cell, pk) in a[row].iter_mut().zip(pivot_row).skip(col) {
                *cell -= f * pk;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = [0.0f64; 3];
    for row in (0..3).rev() {
        let mut acc = b[row];
        for (ak, xk) in a[row].iter().zip(&x).skip(row + 1) {
            acc -= ak * xk;
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PAPER_ALPHA, PAPER_MU};

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = LinearFit::fit(&pts);
        assert!((f.alpha - 3.0).abs() < 1e-9);
        assert!((f.mu - 2.0).abs() < 1e-9);
    }

    #[test]
    fn low_region_fit_matches_paper_constants() {
        // Eq. 16: x = 0.0267 + 0.354·(g/b) for the x ≤ 0.4 region.
        let f = LinearFit::fit_low_region(0.4);
        assert!(
            (f.alpha - PAPER_ALPHA).abs() < 0.012,
            "alpha {} vs paper {PAPER_ALPHA}",
            f.alpha
        );
        assert!(
            (f.mu - PAPER_MU).abs() < 0.03,
            "mu {} vs paper {PAPER_MU}",
            f.mu
        );
    }

    #[test]
    fn low_region_fit_error_within_paper_bound() {
        // Fig. 8: "the linear regression achieves an average error of 5%".
        let f = LinearFit::fit_low_region(0.4);
        let err = f.avg_relative_error(1.05, 0.05);
        assert!(err < 0.06, "avg rel error {err}");
    }

    #[test]
    fn piecewise_curve_meets_five_percent_bound() {
        // Fig. 7: max relative error ≤ 5 % per interval.
        let c = PiecewiseCurve::fit_default();
        assert_eq!(c.segments().len(), 6);
        let err = c.max_relative_error(0.05, 50.0);
        assert!(err < 0.05, "max rel error {err}");
    }

    #[test]
    fn piecewise_average_error_below_one_percent() {
        // Paper: "The average relative error is actually much lower,
        // which is less than 1%."
        let c = PiecewiseCurve::fit_default();
        let n = 2000;
        let mut total = 0.0;
        let mut count = 0;
        for i in 1..=n {
            let r = 50.0 * i as f64 / n as f64;
            let truth = asymptotic(r);
            if truth > 1e-6 {
                total += (c.eval(r) - truth).abs() / truth;
                count += 1;
            }
        }
        let avg = total / count as f64;
        assert!(avg < 0.01, "avg rel error {avg}");
    }

    #[test]
    fn curve_saturates_beyond_last_interval() {
        let c = PiecewiseCurve::fit_default();
        assert!(c.eval(200.0) > 0.99);
        assert_eq!(c.eval(0.0), 0.0);
        assert_eq!(c.eval(-1.0), 0.0);
    }

    #[test]
    fn curve_is_monotone() {
        let c = PiecewiseCurve::fit_default();
        let mut prev = 0.0;
        for i in 1..500 {
            let r = i as f64 * 0.1;
            let x = c.eval(r);
            assert!(x >= prev - 5e-3, "non-monotone at r={r}: {x} after {prev}");
            prev = x;
        }
    }

    #[test]
    fn quadratic_fit_recovers_polynomial() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let r = i as f64 * 0.3;
                (r, 1.0 - 0.5 * r + 0.25 * r * r)
            })
            .collect();
        let c = fit_quadratic(&pts);
        assert!((c[0] - 1.0).abs() < 1e-8);
        assert!((c[1] + 0.5).abs() < 1e-8);
        assert!((c[2] - 0.25).abs() < 1e-8);
    }

    #[test]
    fn collision_model_impl_uses_ratio() {
        use crate::CollisionModel;
        let c = PiecewiseCurve::fit_default();
        let direct = c.eval(2.0);
        assert!((c.rate(2000.0, 1000.0) - direct).abs() < 1e-12);
    }
}
