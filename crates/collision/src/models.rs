//! The collision-rate formulas of Section 4.
//!
//! Setting: `g` groups hash uniformly into `b` single-slot buckets; the
//! stream visits groups uniformly (random data) or in flows of average
//! length `l` (clustered data). The per-bucket group count `K` is
//! `Binomial(g, 1/b)`.
//!
//! The paper's precise rate (Eq. 13) is
//!
//! ```text
//! x = (b/g) · Σ_{k=2}^{g} C(g,k) (1/b)^k (1−1/b)^{g−k} (k−1)
//! ```
//!
//! Because `Σ_k P(K=k)(k−1) = E[K] − 1 + P(K=0)` and `E[K] = g/b`, the
//! sum collapses to the **closed form**
//!
//! ```text
//! x = 1 − (b/g) · (1 − (1−1/b)^g)
//! ```
//!
//! We implement the closed form ([`precise`]), the literal sum
//! ([`precise_sum`], used to cross-validate and to expose the per-`k`
//! terms of Fig. 6), and the §4.4 Gaussian-truncated sum
//! ([`precise_truncated`]) that stops at `µ + nσ`.

/// The rough model (Eq. 10): `x = 1 − b/g`, clamped at 0.
///
/// Derived from the expected-occupancy approximation `B_k = b` at
/// `k = g/b`; accurate only for large `g/b`.
#[inline]
pub fn rough(g: f64, b: f64) -> f64 {
    if g <= 0.0 {
        return 0.0;
    }
    (1.0 - b / g).max(0.0)
}

/// Exact precise model (closed form of Eq. 13) for integral sizes.
pub fn precise(g: u64, b: u64) -> f64 {
    precise_f(g as f64, b as f64)
}

/// Exact precise model for real-valued `g`, `b` (the optimizer treats
/// table sizes continuously).
pub fn precise_f(g: f64, b: f64) -> f64 {
    if g <= 0.0 {
        return 0.0;
    }
    let b = b.max(1.0);
    if b <= 1.0 {
        // One bucket: all groups share it; rate = 1 - 1/g for g ≥ 1.
        return (1.0 - 1.0 / g).max(0.0);
    }
    // P(K = 0) = (1 - 1/b)^g, computed in log space for stability.
    let p0 = (g * (1.0 - 1.0 / b).ln()).exp();
    let x = 1.0 - (b / g) * (1.0 - p0);
    x.clamp(0.0, 1.0)
}

/// The asymptotic `g/b`-only curve: `x(r) = 1 − (1 − e^{−r})/r`.
///
/// This is the `b → ∞` limit of the precise model at fixed `r = g/b` and
/// the function the paper tabulates/regresses in §4.4 (Figs. 7–8).
#[inline]
pub fn asymptotic(r: f64) -> f64 {
    if r <= 0.0 {
        return 0.0;
    }
    if r < 1e-6 {
        // Series expansion avoids catastrophic cancellation: x ≈ r/2 − r²/6.
        return r / 2.0 - r * r / 6.0;
    }
    (1.0 - (1.0 - (-r).exp()) / r).clamp(0.0, 1.0)
}

/// Literal term-wise evaluation of Eq. 13, summing `k = 2..=g`.
///
/// Terms are generated with the stable binomial recurrence
/// `t_k = t_{k−1} · (g−k+1)/k · 1/(b−1)` starting from
/// `t_0 = (1−1/b)^g`. Exposed mainly to validate [`precise`] and to power
/// Fig. 6; `O(g)` time.
pub fn precise_sum(g: u64, b: u64) -> f64 {
    collision_terms(g, b, g)
        .into_iter()
        .map(|(_, t)| t)
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// Gaussian-truncated sum (§4.4): stop at `k = ⌈µ + nσ⌉` where
/// `µ = g/b` and `σ² = g(1 − 1/b)/b`.
///
/// The paper argues `n = 5` suffices because the per-`k` collision terms
/// follow a Gaussian-with-amplitude shape (Fig. 6).
pub fn precise_truncated(g: u64, b: u64, n_sigma: f64) -> f64 {
    if g == 0 || b == 0 {
        return 0.0;
    }
    let gf = g as f64;
    let bf = b as f64;
    let mu = gf / bf;
    let sigma = (gf * (1.0 - 1.0 / bf) / bf).sqrt();
    let kmax = ((mu + n_sigma * sigma).ceil() as u64).clamp(2, g);
    collision_terms(g, b, kmax)
        .into_iter()
        .map(|(_, t)| t)
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// Per-`k` contributions to the collision rate (the series of Fig. 6):
/// `term_k = (b/g) · C(g,k) (1/b)^k (1−1/b)^{g−k} · (k−1)` for
/// `k = 2..=k_max`.
pub fn collision_terms(g: u64, b: u64, k_max: u64) -> Vec<(u64, f64)> {
    if g == 0 || b <= 1 {
        return Vec::new();
    }
    let gf = g as f64;
    let bf = b as f64;
    let k_max = k_max.min(g);
    // t_k = C(g,k) p^k q^(g-k); recurrence in the ratio p/q = 1/(b-1).
    let ratio = 1.0 / (bf - 1.0);
    let mut t = (gf * (1.0 - 1.0 / bf).ln()).exp(); // t_0 = q^g
    let mut out = Vec::with_capacity(k_max.saturating_sub(1) as usize);
    for k in 1..=k_max {
        t *= (gf - k as f64 + 1.0) / k as f64 * ratio;
        if k >= 2 {
            out.push((k, (bf / gf) * t * (k as f64 - 1.0)));
        }
        if t < 1e-308 {
            break; // underflow: all further terms are zero
        }
    }
    out
}

/// Clustered-data collision rate (Eq. 15): the random-data rate divided
/// by the average flow length `l ≥ 1`.
pub fn clustered(g: u64, b: u64, l: f64) -> f64 {
    precise(g, b) / l.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_literal_sum() {
        for &(g, b) in &[
            (10u64, 7u64),
            (100, 100),
            (552, 1000),
            (3000, 1000),
            (2837, 300),
            (50, 1000),
        ] {
            let cf = precise(g, b);
            let sum = precise_sum(g, b);
            assert!(
                (cf - sum).abs() < 1e-9,
                "g={g} b={b}: closed {cf} vs sum {sum}"
            );
        }
    }

    #[test]
    fn truncated_sum_converges_at_five_sigma() {
        // §4.4's claim: summing to µ + 5σ loses essentially nothing.
        for &(g, b) in &[(3000u64, 1000u64), (10_000, 500), (800, 800)] {
            let full = precise_sum(g, b);
            let trunc = precise_truncated(g, b, 5.0);
            assert!(
                (full - trunc).abs() / full.max(1e-12) < 5e-3,
                "g={g} b={b}: {full} vs {trunc}"
            );
        }
    }

    #[test]
    fn fig6_terms_bell_shape() {
        // Paper Fig. 6: g = 3000, b = 1000. Terms peak at k = 4 and are
        // near zero beyond k ≈ 12.
        let terms = collision_terms(3000, 1000, 3000);
        let (peak_k, peak_v) = terms
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(peak_k, 4, "peak at k={peak_k}, value {peak_v}");
        let tail: f64 = terms.iter().filter(|(k, _)| *k > 12).map(|(_, t)| t).sum();
        assert!(tail < 1e-3, "tail mass {tail}");
        // The paper reads the k = 8 component as ≈ 0.02.
        let k8 = terms.iter().find(|(k, _)| *k == 8).unwrap().1;
        assert!((k8 - 0.02).abs() < 0.01, "k=8 term {k8}");
    }

    #[test]
    fn rough_vs_precise_behaviour() {
        // Rough model is 0 below g/b = 1 (wrong) and approaches the
        // precise model for large g/b (paper Fig. 5 narrative).
        assert_eq!(rough(500.0, 1000.0), 0.0);
        assert!(precise(500, 1000) > 0.05);
        let r = rough(50_000.0, 1000.0);
        let p = precise(50_000, 1000);
        assert!((r - p).abs() < 0.01, "rough {r} precise {p}");
    }

    #[test]
    fn asymptotic_limits() {
        assert_eq!(asymptotic(0.0), 0.0);
        assert!((asymptotic(1e-9) - 0.5e-9).abs() < 1e-12);
        assert!(asymptotic(1000.0) > 0.99);
        // At r = 1: 1 - (1 - 1/e) = 1/e ≈ 0.3679.
        assert!((asymptotic(1.0) - (1.0f64).exp().recip()).abs() < 1e-12);
    }

    #[test]
    fn asymptotic_is_large_b_limit_of_precise() {
        let r = 2.0;
        for &b in &[100u64, 1000, 10_000] {
            let g = (r * b as f64) as u64;
            let diff = (precise(g, b) - asymptotic(r)).abs();
            assert!(diff < 5.0 / b as f64, "b={b} diff={diff}");
        }
    }

    #[test]
    fn precise_is_monotone_in_g_and_antitone_in_b() {
        let base = precise(1000, 500);
        assert!(precise(2000, 500) > base);
        assert!(precise(1000, 1000) < base);
    }

    #[test]
    fn clustered_divides_by_flow_length() {
        let x = precise(1000, 500);
        assert!((clustered(1000, 500, 4.0) - x / 4.0).abs() < 1e-12);
        assert_eq!(clustered(1000, 500, 0.0), x);
    }

    #[test]
    fn single_bucket_edge_case() {
        // g groups into one bucket: every group change collides.
        assert!((precise_f(4.0, 1.0) - 0.75).abs() < 1e-12);
        assert_eq!(precise_f(1.0, 1.0), 0.0);
    }

    #[test]
    fn zero_and_tiny_inputs() {
        assert_eq!(precise(0, 100), 0.0);
        assert_eq!(rough(0.0, 100.0), 0.0);
        assert_eq!(precise(1, 100), 0.0); // one group never collides
        assert!(collision_terms(0, 10, 5).is_empty());
        assert!(collision_terms(10, 1, 5).is_empty());
    }

    #[test]
    fn feller_seven_balls_seven_buckets() {
        // §4.1 cites Feller's g = b = 7 example to argue the expected-case
        // estimate is unrealistic. Sanity: precise rate at g = b = 7 is
        // far from the rough model's 0.
        let x = precise(7, 7);
        assert!(x > 0.2 && x < 0.5, "x = {x}");
        assert_eq!(rough(7.0, 7.0), 0.0);
    }
}
