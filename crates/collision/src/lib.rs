//! Collision-rate models for single-slot hash tables (paper Section 4).
//!
//! The LFTA hash table keeps **one** `{group, count}` pair per bucket; a
//! probe by a record of a different group than the bucket's occupant is a
//! *collision* and triggers an eviction. The per-table collision rate is
//! the central quantity of the paper's cost model.
//!
//! This crate provides:
//!
//! * [`models`] — the rough model (Eq. 10), the precise binomial-occupancy
//!   model (Eq. 13, both as the literal sum, the Gaussian-truncated sum of
//!   §4.4, and an exact closed form), the clustered-data extension
//!   (Eq. 15), and the `g/b`-only asymptotic curve;
//! * [`curve`] — the precomputed collision-rate curve as a function of
//!   `g/b` with the paper's piecewise regression and the linear low-rate
//!   fit `x = 0.0267 + 0.354·(g/b)` (Eq. 16);
//! * [`occupancy`] — expected bucket-occupancy counts `B_k` (Eq. 12) and
//!   empirical occupancy measurement used to validate the random-hash
//!   assumption;
//! * [`CollisionModel`] — the trait through which the optimizer consumes
//!   a rate model.

#![deny(unsafe_code)]

pub mod curve;
pub mod models;
pub mod occupancy;

/// Intercept of the paper's linear low-rate fit (Eq. 16).
pub const PAPER_ALPHA: f64 = 0.0267;
/// Slope of the paper's linear low-rate fit (Eq. 16).
pub const PAPER_MU: f64 = 0.354;

/// A collision-rate model: maps `(groups, buckets)` to a rate in `[0, 1]`.
///
/// Clustering is handled by the caller (divide by the average flow
/// length, Eq. 15) because flow lengths are a property of the data stream
/// rather than of the table.
pub trait CollisionModel {
    /// Collision rate of a table with `b` buckets holding `g` groups.
    fn rate(&self, g: f64, b: f64) -> f64;

    /// Convenience: clustered rate with average flow length `l ≥ 1`
    /// (Eq. 15: the random-data rate divided by `l`).
    fn clustered_rate(&self, g: f64, b: f64, l: f64) -> f64 {
        self.rate(g, b) / l.max(1.0)
    }
}

/// The paper's working model: `x = α + µ·(g/b)`, clamped to `[0, 1]`
/// (Eq. 16; §5.1 sets `α = 0` for the space-allocation analysis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearModel {
    /// Intercept `α`.
    pub alpha: f64,
    /// Slope `µ`.
    pub mu: f64,
}

impl LinearModel {
    /// The paper's fitted constants `x = 0.0267 + 0.354·(g/b)`.
    pub fn paper() -> LinearModel {
        LinearModel {
            alpha: PAPER_ALPHA,
            mu: PAPER_MU,
        }
    }

    /// The §5.1 approximation `x = µ·(g/b)` with the paper's slope.
    pub fn paper_no_intercept() -> LinearModel {
        LinearModel {
            alpha: 0.0,
            mu: PAPER_MU,
        }
    }

    /// Refits the slope `µ` through a fixed intercept from observed
    /// `(load, rate)` points, where `load = g/b` (already divided by the
    /// flow length for clustered tables) and `rate` is the measured
    /// collision fraction. Least squares through the origin after
    /// subtracting `alpha`:
    ///
    /// ```text
    /// µ = Σ (xᵢ − α)·rᵢ / Σ rᵢ²      with rᵢ = (g/b)ᵢ
    /// ```
    ///
    /// Points with non-positive load carry no slope information and are
    /// skipped; with no usable points the model keeps the paper's slope.
    /// The adaptive runtime uses this to recalibrate the cost model from
    /// live table telemetry without abandoning the paper's functional
    /// form.
    pub fn fit_through_intercept(
        alpha: f64,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> LinearModel {
        let mut num = 0.0;
        let mut den = 0.0;
        for (load, rate) in points {
            if load > 0.0 {
                num += (rate - alpha) * load;
                den += load * load;
            }
        }
        let mu = if den > 0.0 {
            (num / den).max(0.0)
        } else {
            PAPER_MU
        };
        LinearModel { alpha, mu }
    }
}

impl CollisionModel for LinearModel {
    #[inline]
    fn rate(&self, g: f64, b: f64) -> f64 {
        if g <= 0.0 {
            return 0.0;
        }
        let b = b.max(1.0);
        (self.alpha + self.mu * g / b).clamp(0.0, 1.0)
    }
}

/// The `g/b`-only asymptotic form of the precise model:
/// `x(r) = 1 − (1 − e^(−r))/r` — the limit of Eq. 13 as `b → ∞` with
/// `r = g/b` fixed (§4.4 shows the rate depends essentially only on
/// `g/b`; Table 1 bounds the residual dependence below 1.5 %).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AsymptoticModel;

impl CollisionModel for AsymptoticModel {
    #[inline]
    fn rate(&self, g: f64, b: f64) -> f64 {
        if g <= 0.0 {
            return 0.0;
        }
        models::asymptotic(g / b.max(1.0))
    }
}

/// The exact finite-size precise model (closed form of Eq. 13).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PreciseModel;

impl CollisionModel for PreciseModel {
    #[inline]
    fn rate(&self, g: f64, b: f64) -> f64 {
        models::precise_f(g, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_clamps() {
        let m = LinearModel::paper();
        assert_eq!(m.rate(0.0, 100.0), 0.0);
        assert_eq!(m.rate(1e9, 1.0), 1.0);
        let mid = m.rate(100.0, 100.0);
        assert!((mid - (PAPER_ALPHA + PAPER_MU)).abs() < 1e-12);
    }

    #[test]
    fn clustered_rate_divides_by_flow_length() {
        let m = LinearModel::paper();
        let x = m.rate(500.0, 1000.0);
        assert!((m.clustered_rate(500.0, 1000.0, 5.0) - x / 5.0).abs() < 1e-12);
        // l < 1 treated as 1.
        assert_eq!(m.clustered_rate(500.0, 1000.0, 0.5), x);
    }

    #[test]
    fn refit_recovers_a_synthetic_slope() {
        // Points generated by x = 0.0267 + 0.5·(g/b): the refit must
        // recover µ = 0.5 exactly (the system is consistent).
        let alpha = PAPER_ALPHA;
        let pts: Vec<(f64, f64)> = [0.1, 0.4, 0.9, 1.7]
            .iter()
            .map(|&r| (r, alpha + 0.5 * r))
            .collect();
        let m = LinearModel::fit_through_intercept(alpha, pts);
        assert!((m.mu - 0.5).abs() < 1e-12, "mu = {}", m.mu);
        assert_eq!(m.alpha, alpha);
    }

    #[test]
    fn refit_without_points_keeps_paper_slope() {
        let m = LinearModel::fit_through_intercept(0.0, std::iter::empty());
        assert_eq!(m.mu, PAPER_MU);
        // Negative fitted slopes clamp to zero rather than predicting
        // negative collision rates.
        let m = LinearModel::fit_through_intercept(0.5, [(1.0, 0.0)]);
        assert_eq!(m.mu, 0.0);
    }

    #[test]
    fn models_agree_in_moderate_regime() {
        // At g = 3000, b = 1000 (the paper's Fig. 6 setting) all precise
        // variants should agree closely.
        let a = AsymptoticModel.rate(3000.0, 1000.0);
        let p = PreciseModel.rate(3000.0, 1000.0);
        assert!((a - p).abs() < 5e-3, "asymptotic {a} vs precise {p}");
    }
}
