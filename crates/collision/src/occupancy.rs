//! Bucket-occupancy statistics (`B_k`, Eq. 11–12) and empirical
//! validation of the random-hash assumption.
//!
//! `B_k` is the number of buckets holding exactly `k` groups. The paper
//! derives `B_k = b·C(g,k)(1/b)^k(1−1/b)^{g−k}` (Eq. 12) by treating
//! buckets as independent, and validates it empirically (§4.2: "the
//! actual distribution of B_k matches Equation 13 well"). This module
//! provides both the analytic expectation and the measured distribution
//! under the workspace hash function.

use msa_stream::GroupKey;

/// Expected number of buckets holding exactly `k` of the `g` groups in a
/// `b`-bucket table (Eq. 12).
pub fn expected_buckets_with_k(g: u64, b: u64, k: u64) -> f64 {
    if b == 0 || k > g {
        return 0.0;
    }
    if b == 1 {
        return if k == g { 1.0 } else { 0.0 };
    }
    // b · C(g,k) p^k q^(g−k) with p = 1/b, in log space.
    let (gf, bf, kf) = (g as f64, b as f64, k as f64);
    let log_binom = ln_factorial(g) - ln_factorial(k) - ln_factorial(g - k);
    let logp = log_binom - kf * bf.ln() + (gf - kf) * (1.0 - 1.0 / bf).ln();
    bf * logp.exp()
}

/// Natural log of `n!` (exact accumulation below 256, Stirling above).
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n < 256 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let nf = n as f64;
        // Stirling with 1/(12n) correction: error < 1e-8 for n ≥ 256.
        nf * nf.ln() - nf + 0.5 * (2.0 * std::f64::consts::PI * nf).ln() + 1.0 / (12.0 * nf)
    }
}

/// The measured occupancy histogram: `histogram[k]` = number of buckets
/// to which exactly `k` of the given distinct groups hash.
pub fn measured_occupancy(groups: &[GroupKey], buckets: usize, seed: u64) -> Vec<u64> {
    let mut per_bucket = vec![0u64; buckets];
    for gk in groups {
        let h = gk.hash_with_seed(seed);
        per_bucket[(h % buckets as u64) as usize] += 1;
    }
    let max_k = per_bucket.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; max_k + 1];
    for &k in &per_bucket {
        hist[k as usize] += 1;
    }
    hist
}

/// Total-variation distance between the measured occupancy histogram and
/// the analytic expectation, normalised by the bucket count. Values near
/// zero confirm the hash behaves like the random-hash model.
pub fn occupancy_model_distance(groups: &[GroupKey], buckets: usize, seed: u64) -> f64 {
    let hist = measured_occupancy(groups, buckets, seed);
    let g = groups.len() as u64;
    let b = buckets as u64;
    let mut dist = 0.0;
    let k_hi = hist.len().max(32) as u64;
    for k in 0..=k_hi {
        let measured = hist.get(k as usize).copied().unwrap_or(0) as f64;
        let expected = expected_buckets_with_k(g, b, k);
        dist += (measured - expected).abs();
    }
    dist / (2.0 * buckets as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_stream::GroupKey;

    #[test]
    fn expected_counts_sum_to_buckets() {
        let (g, b) = (200u64, 50u64);
        let total: f64 = (0..=g).map(|k| expected_buckets_with_k(g, b, k)).sum();
        assert!((total - b as f64).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn expected_groups_are_conserved() {
        // Σ k·B_k = g.
        let (g, b) = (300u64, 120u64);
        let total: f64 = (0..=g)
            .map(|k| k as f64 * expected_buckets_with_k(g, b, k))
            .sum();
        assert!((total - g as f64).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn feller_example_probability() {
        // Feller's g = b = 7: P(a given bucket has exactly 1 group) =
        // C(7,1)(1/7)(6/7)^6 ≈ 0.3966; all 7 buckets singly occupied has
        // probability 7!/7^7 ≈ 0.00612 (the paper quotes 0.006120).
        let p1 = expected_buckets_with_k(7, 7, 1) / 7.0;
        assert!((p1 - 0.3966).abs() < 1e-3, "p1 = {p1}");
        let all_single = (ln_factorial(7) - 7.0 * (7f64).ln()).exp();
        assert!((all_single - 0.006120).abs() < 1e-5, "{all_single}");
    }

    #[test]
    fn ln_factorial_stirling_agrees_with_exact() {
        // Cross the exact/Stirling boundary.
        let exact: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - exact).abs() < 1e-6);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }

    #[test]
    fn measured_occupancy_matches_model() {
        // 3000 random groups into 1000 buckets (Fig. 6 setting): the
        // measured histogram should be close to the analytic B_k.
        let groups: Vec<GroupKey> = (0..3000u32)
            .map(|i| GroupKey::from_values(&[i, i.wrapping_mul(2654435761)]))
            .collect();
        let d = occupancy_model_distance(&groups, 1000, 99);
        assert!(d < 0.05, "model distance {d}");
    }

    #[test]
    fn measured_histogram_accounts_all_buckets() {
        let groups: Vec<GroupKey> = (0..500u32).map(|i| GroupKey::from_values(&[i])).collect();
        let hist = measured_occupancy(&groups, 128, 1);
        assert_eq!(hist.iter().sum::<u64>(), 128);
        let total_groups: u64 = hist.iter().enumerate().map(|(k, &c)| k as u64 * c).sum();
        assert_eq!(total_groups, 500);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(expected_buckets_with_k(5, 0, 1), 0.0);
        assert_eq!(expected_buckets_with_k(5, 10, 6), 0.0);
        assert_eq!(expected_buckets_with_k(5, 1, 5), 1.0);
        assert_eq!(expected_buckets_with_k(5, 1, 3), 0.0);
    }
}
