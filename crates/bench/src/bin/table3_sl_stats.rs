//! Table 3 — how often SL is the best heuristic, and how far it is from
//! the best when it is not.
//!
//! Paper values: SL best in 44/89/89/89/100 % of configurations for
//! M = 20k…100k; when not best, its error exceeds the best heuristic's
//! by only 2.2/0.006/0.15/0.6/0 %.

use msa_bench::{alloc_error_sweep, max_phantoms, paper_trace, print_table, stats_abcd};

fn main() {
    let trace = paper_trace();
    let stats = stats_abcd(&trace.records);
    println!(
        "Table 3: statistics on SL (configurations with ≤ {} phantoms; \
         MSA_FULL=1 for the unbounded enumeration)",
        max_phantoms()
    );

    let sweep = alloc_error_sweep(&stats);
    let mut rows = Vec::new();
    for (m, errors) in &sweep {
        let mut sl_best = 0usize;
        let mut gap_sum = 0.0f64;
        let mut gap_n = 0usize;
        for row in errors {
            let sl = row[0];
            let best = row.iter().copied().fold(f64::INFINITY, f64::min);
            // Treat ties within 0.1 percentage point as "best".
            if sl <= best + 1e-3 {
                sl_best += 1;
            } else {
                gap_sum += sl - best;
                gap_n += 1;
            }
        }
        let pct_best = 100.0 * sl_best as f64 / errors.len() as f64;
        let avg_gap = if gap_n == 0 {
            0.0
        } else {
            gap_sum / gap_n as f64
        };
        rows.push(vec![
            format!("{:.0}", m / 1000.0),
            format!("{pct_best:.0}"),
            format!("{:.2}", avg_gap * 100.0),
        ]);
    }
    print_table(
        "SL statistics",
        &["M (thousand)", "SL being best (%)", "error from best (%)"],
        &rows,
    );
    println!("\npaper: SL best 44/89/89/89/100 %; gap ≤ 2.2 %.");
}
