//! Figure 6 — probability of collision vs `k` (g = 3000, b = 1000).
//!
//! Plots the per-`k` contribution of Eq. 13. The paper reads off: a bell
//! shape peaking at `k = 4`, the `k = 8` component already down to
//! ≈ 0.02, and negligible mass beyond `k ≈ 12`, justifying the
//! `µ + 5σ` truncation of §4.4.

use msa_bench::{f4, print_table};
use msa_collision::models;

fn main() {
    let (g, b) = (3000u64, 1000u64);
    println!("Figure 6: probability of collision vs k (g = {g}, b = {b})");

    let terms = models::collision_terms(g, b, 20);
    let rows: Vec<Vec<String>> = terms
        .iter()
        .map(|(k, t)| vec![k.to_string(), f4(*t)])
        .collect();
    print_table("per-k collision probability", &["k", "probability"], &rows);

    let mu = g as f64 / b as f64;
    let sigma = (g as f64 * (1.0 - 1.0 / b as f64) / b as f64).sqrt();
    println!("\nmu = {:.2}, sigma = {:.3}", mu, sigma);
    println!(
        "mu + 3*sigma = {:.1} (paper: 8.2), mu + 5*sigma = {:.1} (paper: ~12)",
        mu + 3.0 * sigma,
        mu + 5.0 * sigma
    );
    let full = models::precise_sum(g, b);
    let trunc5 = models::precise_truncated(g, b, 5.0);
    println!(
        "full sum = {:.6}, truncated at mu+5sigma = {:.6} (rel. err {:.4}%)",
        full,
        trunc5,
        (full - trunc5).abs() / full * 100.0
    );
    if let Some(peak) = terms.iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
        println!("peak at k = {} (paper: k = 4)", peak.0);
    }
}
