//! Figure 9 — space-allocation heuristics vs exhaustive search,
//! configurations `(ABC(AC(A C) B))` and `AB(A B) CD(C D)`.
//!
//! For M from 20,000 to 100,000 words, each heuristic's cost is compared
//! with the exhaustive-search optimum; the paper reports SL as the best
//! heuristic (errors of a few percent) with PL/PR reaching up to 35 %.

use msa_bench::{
    alloc_error_row, m_sweep, paper_trace, parse_config_leaves, pct, print_table, stats_abcd,
};
use msa_collision::LinearModel;
use msa_optimizer::config::ParseError;
use msa_optimizer::cost::CostContext;

fn main() -> Result<(), ParseError> {
    let trace = paper_trace();
    let stats = stats_abcd(&trace.records);
    let model = LinearModel::paper_no_intercept();
    let ctx = CostContext::new(&stats, &model);

    for (label, notation) in [
        ("Figure 9(a): (ABC(AC(A C) B))", "ABC(AC(A C) B)"),
        ("Figure 9(b): AB(A B) CD(C D)", "AB(A B) CD(C D)"),
    ] {
        let cfg = parse_config_leaves(notation)?;
        let rows: Vec<Vec<String>> = m_sweep()
            .into_iter()
            .map(|m| {
                let errs = alloc_error_row(&cfg, m, &ctx);
                let mut row = vec![format!("{:.0}", m / 1000.0)];
                row.extend(errs.into_iter().map(pct));
                row
            })
            .collect();
        print_table(
            label,
            &["M (thousand)", "SL (%)", "SR (%)", "PL (%)", "PR (%)"],
            &rows,
        );
    }
    println!("\npaper: SL is best (≤ ~8%); PL/PR errors reach 35% in 9(a).");
    Ok(())
}
