//! Checkpoint-durability benchmark: what crash safety costs, and how
//! fast a cold process comes back.
//!
//! The durable store commits a generation at every epoch boundary
//! (write-temp → fsync → rename → fsync-dir) and appends each
//! post-commit eviction delivery to a checksummed WAL. Both disciplines
//! buy crash atomicity with real syscalls, so the interesting numbers
//! are the *overhead* of a store-attached run against the identical
//! in-memory run, amortized per commit, and the *cold-start latency*:
//! reopening the directory, scrubbing every artifact, and rebuilding an
//! executor from the newest generation.
//!
//! The epoch length is the checkpoint-density knob, so the sweep runs
//! one row per epoch length: denser checkpoints mean more commit
//! traffic but a shorter WAL replay on recovery. Before any timing is
//! reported, each row's durable run and its recovery are executed twice
//! and asserted bit-identical — reports, per-query results, store
//! counters, and the recovered generation all included; wall-clock is
//! the only thing allowed to vary.
//!
//! Writes `results/BENCH_durability.json`.

use msa_bench::{print_table, scale, seed, CostParams, PhysicalPlan, RunReport};
use msa_core::{ExecutorConfig, Hfta, MsaError, StoreHandle, StoreStats};
use msa_stream::{AttrSet, Record, UniformStreamBuilder};
use std::path::PathBuf;
use std::time::Instant;

fn plan() -> Result<PhysicalPlan, MsaError> {
    // The shard-scaling plan: query set A/B/C/D under an ABCD phantom.
    let q = |name: &str, parent, buckets, is_query| -> Result<_, MsaError> {
        Ok(msa_bench::PlanNode {
            attrs: AttrSet::parse_checked(name)?,
            parent,
            buckets,
            is_query,
        })
    };
    Ok(PhysicalPlan::new(vec![
        q("ABCD", None, 8_192, false)?,
        q("A", Some(0), 2_048, true)?,
        q("B", Some(0), 2_048, true)?,
        q("C", Some(0), 2_048, true)?,
        q("D", Some(0), 2_048, true)?,
    ])?)
}

fn config(plan: &PhysicalPlan, epoch_micros: u64, root_seed: u64) -> ExecutorConfig {
    let mut cfg = ExecutorConfig::new(plan.clone(), CostParams::paper(), epoch_micros, root_seed);
    cfg.durable = true;
    cfg
}

fn store_error(e: msa_core::StoreError) -> MsaError {
    println!("store error: {e}");
    MsaError::State("durable store refused an operation")
}

/// One timed durable run into a fresh directory. The executor is
/// dropped without `finish()` — the process "dies" with the last epoch
/// open, exactly the state a cold start has to repair and replay.
struct DurableRun {
    report: RunReport,
    stats: StoreStats,
    run_ms: f64,
}

fn durable_run(
    plan: &PhysicalPlan,
    root: &PathBuf,
    epoch_micros: u64,
    root_seed: u64,
    records: &[Record],
) -> Result<DurableRun, MsaError> {
    std::fs::remove_dir_all(root).ok();
    let handle = StoreHandle::on_disk(root).map_err(store_error)?;
    let mut ex = config(plan, epoch_micros, root_seed)
        .build()
        .with_store(handle.clone());
    let t = Instant::now();
    ex.run(records);
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(!ex.store_degraded(), "the disk store must not degrade");
    let report = ex.report().clone();
    drop(ex);
    Ok(DurableRun {
        report,
        stats: handle.stats(),
        run_ms,
    })
}

/// One timed cold-start: reopen the directory, scrub everything, and
/// rebuild an executor from the newest generation; then replay the
/// stream tail to the fault-free answer.
struct ColdStart {
    report: RunReport,
    hfta: Hfta,
    generation: u64,
    replay_records: u64,
    recover_ms: f64,
}

fn cold_start(
    plan: &PhysicalPlan,
    root: &PathBuf,
    epoch_micros: u64,
    root_seed: u64,
    records: &[Record],
) -> Result<ColdStart, MsaError> {
    let t = Instant::now();
    let handle = StoreHandle::on_disk(root).map_err(store_error)?;
    let scrub = handle.scrub().map_err(store_error)?;
    assert!(
        scrub.generations_quarantined.is_empty(),
        "a clean shutdown must scrub clean: {scrub:?}"
    );
    let recovery = handle.recover_executor(&config(plan, epoch_micros, root_seed));
    let recover_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(recovery.fallbacks, 0, "clean store: no fallback");
    let Some(mut ex) = recovery.executor else {
        return Err(MsaError::State("clean store must yield an executor"));
    };
    let hwm = usize::try_from(recovery.records_hwm)
        .map_err(|_| MsaError::State("recovered high-water mark overflows usize"))?;
    ex.run(&records[hwm..]);
    let (report, hfta) = ex.finish();
    Ok(ColdStart {
        report,
        hfta,
        generation: recovery.generation,
        replay_records: records.len() as u64 - recovery.records_hwm,
        recover_ms,
    })
}

struct Row {
    epoch_micros: u64,
    commits: u64,
    wal_appends: u64,
    run_ms: f64,
    baseline_ms: f64,
    overhead_pct: f64,
    per_commit_us: f64,
    recover_ms: f64,
    replay_records: u64,
}

fn json(rows: &[Row], records: usize, root_seed: u64) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"epoch_micros\": {}, \"commits\": {}, \"wal_appends\": {}, \
                 \"durable_run_ms\": {:.3}, \"in_memory_run_ms\": {:.3}, \
                 \"overhead_pct\": {:.1}, \"per_commit_overhead_us\": {:.1}, \
                 \"cold_start_ms\": {:.3}, \"replay_records\": {}}}",
                r.epoch_micros,
                r.commits,
                r.wal_appends,
                r.run_ms,
                r.baseline_ms,
                r.overhead_pct,
                r.per_commit_us,
                r.recover_ms,
                r.replay_records
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"checkpoint_durability\",\n  \"workload\": \"uniform4_durable_disk\",\n  \
         \"records\": {records},\n  \"seed\": {root_seed},\n  \
         \"metric\": \"durable-run overhead and cold-start latency by checkpoint density\",\n  \
         \"note\": \"Each row attaches a real DiskBackend (write-temp/fsync/rename/fsync-dir \
         commits, fsynced WAL appends) and compares against the identical in-memory run. \
         cold_start_ms = reopen + full scrub + rebuild from the newest generation; \
         replay_records = stream tail past the recovered high-water mark. Functional \
         determinism (two durable runs and two recoveries bit-identical: reports, results, \
         store counters, generation) is asserted before timings are reported — wall-clock \
         is the only free variable.\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

fn main() -> Result<(), MsaError> {
    let records_n = ((120_000.0 * scale()).round() as usize).max(5_000);
    let stream = UniformStreamBuilder::new(4, 500)
        .records(records_n)
        .duration_secs(6.0)
        .seed(seed())
        .build();
    let records = &stream.records;
    let plan = plan()?;
    let root_seed = seed();
    let base = std::env::temp_dir().join(format!("msa_bench_durability_{}", std::process::id()));

    println!(
        "Checkpoint durability: disk-backed overhead and cold start ({} records)",
        records.len()
    );

    let mut rows = Vec::new();
    for epoch_micros in [250_000u64, 500_000, 1_000_000, 2_000_000] {
        // In-memory baseline: same config, no store attached.
        let mut ex = config(&plan, epoch_micros, root_seed).build();
        let t = Instant::now();
        ex.run(records);
        let baseline_ms = t.elapsed().as_secs_f64() * 1e3;
        let baseline = ex.finish();

        // Determinism gate: two fresh durable runs, two cold starts —
        // everything but wall-clock must be bit-identical.
        let root = base.join(format!("epoch_{epoch_micros}"));
        let d1 = durable_run(&plan, &root, epoch_micros, root_seed, records)?;
        let c1 = cold_start(&plan, &root, epoch_micros, root_seed, records)?;
        let root2 = base.join(format!("epoch_{epoch_micros}_twin"));
        let d2 = durable_run(&plan, &root2, epoch_micros, root_seed, records)?;
        let c2 = cold_start(&plan, &root2, epoch_micros, root_seed, records)?;
        assert_eq!(d1.report, d2.report, "durable runs diverged");
        assert_eq!(d1.stats, d2.stats, "store counters diverged");
        assert_eq!(c1.report, c2.report, "recoveries diverged");
        assert_eq!(c1.generation, c2.generation, "generations diverged");
        assert_eq!(c1.hfta.results(), c2.hfta.results(), "replays diverged");
        // And the recovered-and-replayed answer equals the run that
        // never went down.
        assert_eq!(c1.report.records, baseline.0.records, "record conservation");
        assert_eq!(
            c1.hfta.results(),
            baseline.1.results(),
            "cold start must land on the fault-free answer"
        );
        assert!(d1.stats.commits >= 2, "sweep needs several commits");
        assert_eq!(d1.stats.io_gave_up, 0);

        let overhead_ms = (d1.run_ms - baseline_ms).max(0.0);
        rows.push(Row {
            epoch_micros,
            commits: d1.stats.commits,
            wal_appends: d1.stats.wal_appends,
            run_ms: d1.run_ms,
            baseline_ms,
            overhead_pct: if baseline_ms > 0.0 {
                100.0 * overhead_ms / baseline_ms
            } else {
                0.0
            },
            per_commit_us: overhead_ms * 1e3 / d1.stats.commits as f64,
            recover_ms: c1.recover_ms,
            replay_records: c1.replay_records,
        });
        std::fs::remove_dir_all(&root).ok();
        std::fs::remove_dir_all(&root2).ok();
    }
    std::fs::remove_dir_all(&base).ok();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.epoch_micros.to_string(),
                r.commits.to_string(),
                r.wal_appends.to_string(),
                format!("{:.1}", r.run_ms),
                format!("{:.1}", r.baseline_ms),
                format!("{:.1}", r.overhead_pct),
                format!("{:.1}", r.per_commit_us),
                format!("{:.2}", r.recover_ms),
                r.replay_records.to_string(),
            ]
        })
        .collect();
    print_table(
        "Durable-store overhead and cold-start latency by epoch length",
        &[
            "epoch us",
            "commits",
            "wal app",
            "run ms",
            "mem ms",
            "ovh %",
            "us/commit",
            "cold ms",
            "replay",
        ],
        &table,
    );

    let out = json(&rows, records.len(), root_seed);
    std::fs::write("results/BENCH_durability.json", &out)
        .map_err(|e| MsaError::TraceIo(e.into()))?;
    println!("wrote results/BENCH_durability.json");
    Ok(())
}
