//! Figure 11 — GS vs GCSL vs GCPL as a function of GS's space parameter
//! `φ`, on the 4-dimensional uniform dataset with queries {A, B, C, D}
//! and M = 40,000.
//!
//! Costs are model costs normalized by the EPES (optimal) cost. The
//! paper observes: GS has a knee (small φ ⇒ high collision rates; large
//! φ ⇒ no room for phantoms), GCSL is below GS for every φ, and GCPL
//! lower-bounds GS.

use msa_bench::{paper_uniform, print_table, scale, stats_abcd};
use msa_collision::LinearModel;
use msa_core::MsaError;
use msa_optimizer::cost::{ClusterHandling, CostContext};
use msa_optimizer::{epes, greedy_collision, greedy_space, AllocStrategy, FeedingGraph};
use msa_stream::AttrSet;

fn main() -> Result<(), MsaError> {
    let stream = paper_uniform(4);
    let stats = stats_abcd(&stream.records);
    let model = LinearModel::paper_no_intercept();
    let mut ctx = CostContext::new(&stats, &model);
    ctx.clustering = ClusterHandling::None; // synthetic data is unclustered
    let queries: Vec<AttrSet> = ["A", "B", "C", "D"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<_, _>>()?;
    let graph = FeedingGraph::new(&queries);
    let m = 40_000.0 * scale();

    println!(
        "Figure 11: phantom-choice algorithms, uniform data, M = {m:.0} words, \
         {} records, {} groups",
        stream.len(),
        stats.groups(AttrSet::parse_checked("ABCD")?)
    );

    let optimal = epes(&graph, m, &ctx);
    let gcsl = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
    let gcpl = greedy_collision(&graph, m, &ctx, AllocStrategy::ProportionalLinear);

    let mut rows = Vec::new();
    for phi10 in 6..=13 {
        let phi = phi10 as f64 / 10.0;
        let gs = greedy_space(&graph, m, phi, &ctx);
        rows.push(vec![
            format!("{phi:.1}"),
            format!("{:.3}", gcsl.final_step().cost / optimal.cost),
            format!("{:.3}", gcpl.final_step().cost / optimal.cost),
            format!("{:.3}", gs.final_step().cost / optimal.cost),
        ]);
    }
    print_table(
        "relative cost (normalized by EPES)",
        &["phi", "GCSL", "GCPL", "GS"],
        &rows,
    );
    println!("\nEPES configuration: {}", optimal.configuration);
    println!("GCSL configuration: {}", gcsl.final_step().configuration);
    println!("paper: GS knee around phi ≈ 1; GCSL below GS everywhere.");

    Ok(())
}
