//! Ablation — phantom benefit under skew.
//!
//! The paper evaluates uniform and clustered data only; real per-group
//! record counts are heavy-tailed. This ablation sweeps a Zipf exponent
//! over the group universe and measures the phantom configuration's
//! advantage over the flat one. Skew *helps* single-slot tables (hot
//! groups camp in their buckets, like flows do), so the phantom
//! advantage should persist — this quantifies it.

use msa_bench::{measured_cost, print_table, scale, stats_abcd};
use msa_collision::LinearModel;
use msa_core::MsaError;
use msa_optimizer::cost::{ClusterHandling, CostContext};
use msa_optimizer::planner::Plan;
use msa_optimizer::{greedy_collision, AllocStrategy, Configuration, FeedingGraph};
use msa_stream::{AttrSet, ZipfStreamBuilder};

fn main() -> Result<(), MsaError> {
    let queries: Vec<AttrSet> = ["AB", "BC", "BD", "CD"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<_, _>>()?;
    let graph = FeedingGraph::new(&queries);
    let model = LinearModel::paper_no_intercept();
    let m = 40_000.0 * scale();
    let groups = ((2837.0 * scale()).round() as usize).max(8);
    let records = ((500_000.0 * scale()).round() as usize).max(1000);

    println!("Ablation: Zipf skew (4-d data, {groups} groups, {records} records, M = {m:.0})");

    let mut rows = Vec::new();
    for exponent in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let stream = ZipfStreamBuilder::new(4, groups, exponent)
            .records(records)
            .seed(77)
            .build();
        let stats = stats_abcd(&stream.records);
        let ctx = CostContext {
            stats: &stats,
            model: &model,
            params: msa_gigascope::CostParams::paper(),
            clustering: ClusterHandling::None,
        };
        let gcsl = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
        let step = gcsl.final_step();
        let phantom_plan = Plan {
            configuration: step.configuration.clone(),
            allocation: step.allocation.clone(),
            predicted_cost: step.cost,
            predicted_update_cost: 0.0,
        };
        let flat = Configuration::from_queries(&queries);
        let flat_alloc = AllocStrategy::SupernodeLinear.allocate(&flat, m, &ctx);
        let flat_plan = Plan {
            configuration: flat,
            allocation: flat_alloc,
            predicted_cost: 0.0,
            predicted_update_cost: 0.0,
        };
        let with = measured_cost(phantom_plan.to_physical(), &stream.records, 600);
        let without = measured_cost(flat_plan.to_physical(), &stream.records, 600);
        rows.push(vec![
            format!("{exponent:.1}"),
            format!("{with:.2}"),
            format!("{without:.2}"),
            format!("{:.2}", without / with),
            step.configuration.notation(),
        ]);
    }
    print_table(
        "measured cost: phantoms vs flat under skew",
        &[
            "zipf s",
            "GCSL",
            "no phantom",
            "improvement",
            "configuration",
        ],
        &rows,
    );
    println!(
        "\nreading: skew lowers absolute collision rates for both \
         configurations (hot groups camp in buckets); the phantom \
         advantage persists across the sweep."
    );

    Ok(())
}
