//! Figure 12 — cost after each phantom is chosen (the greedy process),
//! uniform 4-d data, queries {A, B, C, D}, M = 40,000.
//!
//! The paper observes: the first phantom gives the largest cost drop;
//! benefits shrink as phantoms accumulate; GS at φ = 0.6 overshoots
//! (cost goes back up on its third phantom); at φ = 1.2–1.3 GS cannot
//! afford more than one phantom.

use msa_bench::{paper_uniform, print_table, scale, stats_abcd};
use msa_collision::LinearModel;
use msa_core::MsaError;
use msa_optimizer::cost::{ClusterHandling, CostContext};
use msa_optimizer::greedy::GreedyTrace;
use msa_optimizer::{epes, greedy_collision, greedy_space, AllocStrategy, FeedingGraph};
use msa_stream::AttrSet;

fn series(trace: &GreedyTrace, norm: f64, len: usize) -> Vec<String> {
    (0..len)
        .map(|i| match trace.step(i) {
            Some(s) => format!("{:.3}", s.cost / norm),
            None => "-".to_string(),
        })
        .collect()
}

fn main() -> Result<(), MsaError> {
    let stream = paper_uniform(4);
    let stats = stats_abcd(&stream.records);
    let model = LinearModel::paper_no_intercept();
    let mut ctx = CostContext::new(&stats, &model);
    ctx.clustering = ClusterHandling::None;
    let queries: Vec<AttrSet> = ["A", "B", "C", "D"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<_, _>>()?;
    let graph = FeedingGraph::new(&queries);
    let m = 40_000.0 * scale();

    println!("Figure 12: the phantom choosing process (M = {m:.0})");

    let optimal = epes(&graph, m, &ctx);
    let norm = optimal.cost;

    let gcsl = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
    let gcpl = greedy_collision(&graph, m, &ctx, AllocStrategy::ProportionalLinear);
    let gs: Vec<(String, GreedyTrace)> = [0.6, 0.8, 1.0, 1.1, 1.2, 1.3]
        .iter()
        .map(|&phi| (format!("GS phi={phi}"), greedy_space(&graph, m, phi, &ctx)))
        .collect();

    let depth = 2 + gcsl.phantoms_chosen().max(gcpl.phantoms_chosen()).max(
        gs.iter()
            .map(|(_, t)| t.phantoms_chosen())
            .max()
            .unwrap_or(0),
    );

    let mut rows = Vec::new();
    {
        let mut row = vec!["GCSL".to_string()];
        row.extend(series(&gcsl, norm, depth));
        rows.push(row);
        let mut row = vec!["GCPL".to_string()];
        row.extend(series(&gcpl, norm, depth));
        rows.push(row);
        for (name, t) in &gs {
            let mut row = vec![name.clone()];
            row.extend(series(t, norm, depth));
            rows.push(row);
        }
    }
    let header: Vec<String> = std::iter::once("algorithm".to_string())
        .chain((0..depth).map(|i| format!("{i} phantoms")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table("relative cost after each phantom", &header_refs, &rows);

    println!("\nphantoms chosen: GCSL {:?}", choices(&gcsl));
    for (name, t) in &gs {
        println!("phantoms chosen: {name} {:?}", choices(t));
    }
    println!("paper: first phantom largest drop; GS phi=1.2/1.3 stop at one phantom.");

    Ok(())
}

fn choices(t: &GreedyTrace) -> Vec<String> {
    t.adopted
        .iter()
        .filter_map(|s| s.added.map(|a| a.to_string()))
        .collect()
}
