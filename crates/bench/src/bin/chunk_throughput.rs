//! Chunked-ingestion throughput: the columnar LFTA hot path versus the
//! scalar oracle on a memory-bound workload.
//!
//! The single-slot LFTA tables are sized far beyond the last-level
//! cache, so every probe is a dependent memory access on the scalar
//! path. The chunked path packs group keys per [`RecordChunk`] segment,
//! precomputes hash slots, and warms them with a batched prefetch pass
//! before the record-major apply — converting a chain of serial misses
//! into batches of independent ones. This benchmark measures what that
//! buys on one shard.
//!
//! Before timing, both paths are run twice end to end and their
//! [`RunReport`]s and per-epoch result lists asserted bit-identical —
//! the speedup only counts because the answer is unchanged. At full
//! scale (`MSA_SCALE` unset or 1.0) the measured ratio is asserted to
//! clear 2x, the bar the vectorization battery's bench gate enforces.
//!
//! Writes `results/BENCH_chunk_throughput.json`.

use msa_bench::{
    print_table, scale, seed, CostParams, Executor, PhysicalPlan, PlanNode, RunReport,
};
use msa_core::{Hfta, MsaError, RecordChunk, PROCESSING_WINDOW_SIZE};
use msa_stream::{AttrSet, Record, UniformStreamBuilder};
use std::time::Instant;

/// One epoch: the benchmark isolates intra-epoch maintenance cost, as
/// the paper's actual-cost experiments do.
const EPOCH_MICROS: u64 = u64::MAX;

fn plan() -> Result<PhysicalPlan, MsaError> {
    let q = |name: &str, parent, buckets, is_query| -> Result<_, MsaError> {
        Ok(PlanNode {
            attrs: AttrSet::parse_checked(name)?,
            parent,
            buckets,
            is_query,
        })
    };
    // An ABCD phantom over four single-attribute queries, with bucket
    // counts that put the working set far beyond any LLC: the root alone
    // is 8 Mi buckets (~0.6 GB of slots), so probes scatter into cold
    // lines while the low load factor keeps eviction cascades — whose
    // cost is identical on both paths — rare.
    Ok(PhysicalPlan::new(vec![
        q("ABCD", None, 1 << 23, false)?,
        q("A", Some(0), 1 << 18, true)?,
        q("B", Some(0), 1 << 18, true)?,
        q("C", Some(0), 1 << 18, true)?,
        q("D", Some(0), 1 << 18, true)?,
    ])?)
}

/// A stream whose tuple universe is large enough that probes scatter
/// over the whole table — hit-dominated (few evictions) but every hit a
/// cold line.
fn stream(scale: f64) -> Vec<Record> {
    let records = ((4_000_000.0 * scale) as usize).max(20_000);
    let groups = ((1_000_000.0 * scale) as usize).max(5_000);
    UniformStreamBuilder::new(4, groups)
        .attr_domains(vec![1 << 16, 1 << 16, 1 << 16, 1 << 16])
        .records(records)
        .duration_secs(1.0)
        .seed(seed())
        .build()
        .records
}

fn build(plan: &PhysicalPlan) -> Executor {
    Executor::new(plan.clone(), CostParams::paper(), EPOCH_MICROS, seed())
}

fn run_scalar(plan: &PhysicalPlan, records: &[Record]) -> (RunReport, Hfta) {
    let mut ex = build(plan);
    ex.run(records);
    ex.finish()
}

/// Chunks are built once, outside the timed region: the sharded feed
/// delivers prebuilt columnar chunks to each shard, so the hot path
/// under measurement is [`Executor::offer_chunk`] itself.
fn chunk_stream(records: &[Record], size: usize) -> Vec<RecordChunk> {
    records
        .chunks(size)
        .map(RecordChunk::from_records)
        .collect()
}

fn run_chunked(plan: &PhysicalPlan, chunks: &[RecordChunk]) -> (RunReport, Hfta) {
    let mut ex = build(plan);
    for c in chunks {
        ex.offer_chunk(c);
    }
    ex.finish()
}

/// Median-of-five wall clock of the ingestion loop alone: table
/// construction (zeroing hundreds of MB of slots) and the end-of-run
/// flush (a full table scan) are identical on both paths and would
/// only dilute the ratio under measurement, so `setup` and the
/// post-run `finish` stay outside the timer.
fn time_runs(plan: &PhysicalPlan, mut ingest: impl FnMut(&mut Executor)) -> f64 {
    let mut once = || {
        let mut ex = build(plan);
        let t = Instant::now();
        ingest(&mut ex);
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(ex.finish());
        secs
    };
    std::hint::black_box(once());
    let mut samples: Vec<f64> = (0..5).map(|_| once()).collect();
    samples.sort_by(f64::total_cmp);
    samples[2]
}

struct Row {
    label: String,
    chunk: usize,
    secs: f64,
    rate: f64,
    speedup: f64,
}

fn main() -> Result<(), MsaError> {
    let scale = scale();
    let records = stream(scale);
    let plan = plan()?;
    let n = records.len();
    println!("Chunked LFTA throughput, one shard, {n} records, 1 epoch");

    // Determinism gate: both paths, twice each, bit-identical outputs —
    // and the chunked output equal to the scalar one.
    let (sr1, sh1) = run_scalar(&plan, &records);
    let (sr2, sh2) = run_scalar(&plan, &records);
    assert_eq!(sr1, sr2, "scalar runs differ");
    assert_eq!(sh1.results(), sh2.results(), "scalar runs differ");
    let window = chunk_stream(&records, PROCESSING_WINDOW_SIZE);
    let (cr1, ch1) = run_chunked(&plan, &window);
    let (cr2, ch2) = run_chunked(&plan, &window);
    assert_eq!(cr1, cr2, "chunked runs differ");
    assert_eq!(ch1.results(), ch2.results(), "chunked runs differ");
    assert_eq!(cr1, sr1, "chunked report != scalar report");
    assert_eq!(ch1.results(), sh1.results(), "chunked results != scalar");
    assert_eq!(sr1.records, n as u64);
    println!("determinism: scalar == chunked, bit for bit, across repeat runs");

    let scalar_secs = time_runs(&plan, |ex| ex.run(&records));
    let mut rows = vec![Row {
        label: "scalar".into(),
        chunk: 1,
        secs: scalar_secs,
        rate: n as f64 / scalar_secs,
        speedup: 1.0,
    }];
    for &size in &[64usize, 256, PROCESSING_WINDOW_SIZE] {
        let chunks = chunk_stream(&records, size);
        let secs = time_runs(&plan, |ex| {
            for c in &chunks {
                ex.offer_chunk(c);
            }
        });
        rows.push(Row {
            label: format!("chunked/{size}"),
            chunk: size,
            secs,
            rate: n as f64 / secs,
            speedup: scalar_secs / secs.max(f64::MIN_POSITIVE),
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.0}", r.rate / 1e3),
                format!("{:.2}", r.speedup),
                format!("{:.4}", r.secs),
            ]
        })
        .collect();
    print_table(
        "Single-shard ingestion throughput by chunk size",
        &["path", "krec/s", "speedup", "secs"],
        &table,
    );

    let best = rows
        .iter()
        .skip(1)
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    if scale >= 1.0 {
        assert!(
            best >= 2.0,
            "chunked path must clear 2x single-shard scalar throughput at full \
             scale; best measured {best:.2}x"
        );
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"path\": \"{}\", \"chunk_size\": {}, \"records_per_sec\": {:.0}, \
                 \"secs\": {:.6}, \"speedup_vs_scalar\": {:.3}}}",
                r.label, r.chunk, r.rate, r.secs, r.speedup
            )
        })
        .collect();
    let out = format!(
        "{{\n  \"bench\": \"chunk_throughput\",\n  \"workload\": \"uniform4_memory_bound\",\n  \
         \"records\": {n},\n  \"seed\": {},\n  \"processing_window_size\": {},\n  \
         \"determinism\": \"asserted: two runs per path and chunked==scalar, bit-identical \
         reports and result lists, before timing\",\n  \
         \"target\": \"best chunked speedup >= 2.0 at MSA_SCALE=1 (asserted in-bench)\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        seed(),
        PROCESSING_WINDOW_SIZE,
        body.join(",\n")
    );
    std::fs::write("results/BENCH_chunk_throughput.json", &out)
        .map_err(|e| MsaError::TraceIo(e.into()))?;
    println!("wrote results/BENCH_chunk_throughput.json");
    Ok(())
}
