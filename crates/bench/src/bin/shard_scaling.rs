//! Shard-scaling benchmark: multi-core LFTA throughput on the fig. 13
//! synthetic workload.
//!
//! For each deployment size `N` (default sweep 1/2/4/8, or a single
//! point via `--shards N`) the stream is hash-partitioned exactly as
//! [`msa_core::ShardedExecutor`] does, each shard's executor is timed
//! serially on its own partition, and the deployment's completion time
//! is the slowest shard — the **critical path**, which the threaded
//! runtime approaches on a host with `N` free cores. The wall clock of
//! the real threaded run is reported alongside, together with the
//! host's core count, so the numbers are interpretable on any machine.
//!
//! Before measuring, each deployment size is run twice through the
//! threaded path and the merged [`RunReport`]s and result lists are
//! asserted bit-identical — the scaling numbers only count if the
//! answer is schedule-independent.
//!
//! Writes `results/BENCH_shard_scaling.json`.

use msa_bench::sharding::{measure, ShardRow};
use msa_bench::{paper_uniform, print_table, seed, CostParams, PhysicalPlan, RunReport};
use msa_core::{Hfta, MsaError, ShardedExecutor};
use msa_stream::{AttrSet, Record};

const EPOCH_MICROS: u64 = 1_000_000;

fn plan() -> Result<PhysicalPlan, MsaError> {
    // The fig. 13 query set A/B/C/D under an ABCD phantom — the shape
    // the paper's optimizer picks for this workload at mid budgets.
    let q = |name: &str, parent, buckets, is_query| -> Result<_, MsaError> {
        Ok(msa_bench::PlanNode {
            attrs: AttrSet::parse_checked(name)?,
            parent,
            buckets,
            is_query,
        })
    };
    Ok(PhysicalPlan::new(vec![
        q("ABCD", None, 8_192, false)?,
        q("A", Some(0), 2_048, true)?,
        q("B", Some(0), 2_048, true)?,
        q("C", Some(0), 2_048, true)?,
        q("D", Some(0), 2_048, true)?,
    ])?)
}

fn threaded_run(
    plan: &PhysicalPlan,
    records: &[Record],
    root_seed: u64,
    shards: usize,
) -> Result<(RunReport, Hfta), MsaError> {
    let mut sx = ShardedExecutor::new(
        plan.clone(),
        CostParams::paper(),
        EPOCH_MICROS,
        root_seed,
        shards,
    )
    .map_err(|_| MsaError::State("shard count must be positive"))?;
    sx.run(records);
    Ok(sx.finish())
}

fn sweep() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--shards" {
            if let Ok(n) = pair[1].parse::<usize>() {
                return vec![n.max(1)];
            }
        }
    }
    vec![1, 2, 4, 8]
}

fn json(rows: &[ShardRow], records: usize, root_seed: u64, host_cores: usize) -> String {
    let base = rows.first().map_or(0.0, |r| r.critical_path_secs);
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"records_per_sec\": {:.0}, \
                 \"critical_path_secs\": {:.6}, \"wall_clock_secs\": {:.6}, \
                 \"speedup_vs_1_shard\": {:.3}}}",
                r.shards,
                r.records_per_sec,
                r.critical_path_secs,
                r.wall_clock_secs,
                base / r.critical_path_secs.max(f64::MIN_POSITIVE)
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"workload\": \"fig13_synthetic_uniform4\",\n  \
         \"records\": {records},\n  \"epoch_micros\": {EPOCH_MICROS},\n  \"seed\": {root_seed},\n  \
         \"host_cores\": {host_cores},\n  \"metric\": \"critical_path\",\n  \
         \"note\": \"records_per_sec = records / slowest shard's serial time; the threaded \
         runtime approaches this bound given >= N cores. wall_clock_secs is the threaded run \
         on this host. Determinism (two threaded runs bit-identical) is asserted before \
         measuring.\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

fn main() -> Result<(), MsaError> {
    let stream = paper_uniform(4);
    let records = &stream.records;
    let plan = plan()?;
    let root_seed = seed();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "Shard scaling on the fig. 13 synthetic workload ({} records, {host_cores} host cores)",
        records.len()
    );

    let mut rows = Vec::new();
    for n in sweep() {
        // Determinism gate: scheduling must not leak into the answer.
        let (r1, h1) = threaded_run(&plan, records, root_seed, n)?;
        let (r2, h2) = threaded_run(&plan, records, root_seed, n)?;
        assert_eq!(r1, r2, "{n} shards: reports differ across threaded runs");
        assert_eq!(
            h1.results(),
            h2.results(),
            "{n} shards: results differ across threaded runs"
        );
        assert_eq!(r1.records, records.len() as u64);
        rows.push(measure(&plan, records, EPOCH_MICROS, root_seed, n));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let base = rows[0].critical_path_secs;
            vec![
                r.shards.to_string(),
                format!("{:.0}", r.records_per_sec),
                format!("{:.2}", base / r.critical_path_secs.max(f64::MIN_POSITIVE)),
                format!("{:.4}", r.critical_path_secs),
                format!("{:.4}", r.wall_clock_secs),
            ]
        })
        .collect();
    print_table(
        "Critical-path throughput by shard count",
        &["shards", "rec/s", "speedup", "critical s", "wall s"],
        &table,
    );

    let out = json(&rows, records.len(), root_seed, host_cores);
    std::fs::write("results/BENCH_shard_scaling.json", &out)
        .map_err(|e| MsaError::TraceIo(e.into()))?;
    println!("wrote results/BENCH_shard_scaling.json");
    Ok(())
}
