//! Ablation — which collision-rate model should the optimizer plan
//! with?
//!
//! The paper plans with the linear regression (Eq. 16) for speed and
//! analytic tractability. This ablation plans the same workload with
//! the linear model, the `g/b`-only asymptotic curve, and the exact
//! finite-size precise model, then *measures* each plan's cost in the
//! executor — quantifying what the cheaper models give up.

use msa_bench::{m_sweep, measured_cost, paper_uniform, print_table, stats_abcd};
use msa_collision::{AsymptoticModel, CollisionModel, LinearModel, PreciseModel};
use msa_core::MsaError;
use msa_optimizer::cost::{ClusterHandling, CostContext};
use msa_optimizer::planner::Plan;
use msa_optimizer::{greedy_collision, AllocStrategy, FeedingGraph};
use msa_stream::AttrSet;

fn main() -> Result<(), MsaError> {
    let stream = paper_uniform(4);
    let stats = stats_abcd(&stream.records);
    let queries: Vec<AttrSet> = ["A", "B", "C", "D"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<_, _>>()?;
    let graph = FeedingGraph::new(&queries);

    println!(
        "Ablation: planning collision model (uniform data, {} records)",
        stream.len()
    );

    let linear = LinearModel::paper_no_intercept();
    let asym = AsymptoticModel;
    let precise = PreciseModel;
    let models: [(&str, &dyn CollisionModel); 3] = [
        ("linear", &linear),
        ("asymptotic", &asym),
        ("precise", &precise),
    ];

    let mut rows = Vec::new();
    for m in m_sweep() {
        let mut row = vec![format!("{:.0}", m / 1000.0)];
        for (name, model) in models {
            let ctx = CostContext {
                stats: &stats,
                model,
                params: msa_gigascope::CostParams::paper(),
                clustering: ClusterHandling::None,
            };
            let trace = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
            let step = trace.final_step();
            let plan = Plan {
                configuration: step.configuration.clone(),
                allocation: step.allocation.clone(),
                predicted_cost: step.cost,
                predicted_update_cost: 0.0,
            };
            let actual = measured_cost(plan.to_physical(), &stream.records, 400);
            row.push(format!("{actual:.2}"));
            let _ = name;
        }
        rows.push(row);
    }
    print_table(
        "measured per-record cost of the chosen plan",
        &["M (thousand)", "linear", "asymptotic", "precise"],
        &rows,
    );
    println!(
        "\nreading: if the columns are close, the paper's cheap linear \
         model loses little plan quality; divergence at small M shows \
         where the saturating models matter."
    );

    Ok(())
}
