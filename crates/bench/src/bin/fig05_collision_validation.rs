//! Figure 5 — collision rates of real data vs the rough and precise
//! models.
//!
//! The paper de-clusters the tcpdump trace (all packets of a flow
//! collapse into one record), extracts datasets with 1–4 attributes
//! (552 / 1,846 / 2,117 / 2,837 groups), and measures hash-table
//! collision rates for `g/b` between 0 and 10, comparing against the
//! rough model (Eq. 10) and the precise model (Eq. 13). The precise
//! model tracks the measurements; the rough model only converges for
//! large `g/b`.

use msa_bench::{f4, paper_trace_declustered, print_table};
use msa_collision::models;
use msa_core::MsaError;
use msa_gigascope::table::measure_collision_rate;
use msa_stream::{AttrSet, DatasetStats};

fn main() -> Result<(), MsaError> {
    let stream = paper_trace_declustered();
    let prefixes = ["A", "AB", "ABC", "ABCD"];
    let sets: Vec<AttrSet> = prefixes
        .iter()
        .map(|p| AttrSet::parse_checked(p))
        .collect::<Result<_, _>>()?;
    let stats = DatasetStats::compute_for(&stream.records, &sets);

    println!("Figure 5: collision rates of (synthesized) real data");
    println!(
        "de-clustered records: {}; dataset groups: {:?}",
        stream.len(),
        sets.iter().map(|&s| stats.groups(s)).collect::<Vec<_>>()
    );

    let ratios = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
    let mut rows = Vec::new();
    for &r in &ratios {
        let mut row = vec![f4(r), f4(models::rough(r, 1.0)), f4(models::asymptotic(r))];
        for &set in &sets {
            let g = stats.groups(set);
            let b = ((g as f64 / r).round() as usize).max(1);
            let measured = measure_collision_rate(
                stream.records.iter().map(|rec| rec.project(set)),
                set,
                b,
                0xF165 ^ set.bits() as u64,
            );
            row.push(f4(measured));
        }
        rows.push(row);
    }
    print_table(
        "collision rate vs g/b",
        &[
            "g/b",
            "rough model",
            "precise model",
            "1 attribute",
            "2 attributes",
            "3 attributes",
            "4 attributes",
        ],
        &rows,
    );

    // The paper's headline: >95 % of measurements within 5 % of the
    // precise model. Our synthesized trace has more visit-count skew in
    // the low-arity projections than the authors' tcpdump (see
    // EXPERIMENTS.md), so we report the 5 % and 10 % thresholds.
    let mut within5 = 0usize;
    let mut within10 = 0usize;
    let mut total = 0usize;
    for &r in &ratios {
        for &set in &sets {
            let g = stats.groups(set);
            let b = ((g as f64 / r).round() as usize).max(1);
            let measured = measure_collision_rate(
                stream.records.iter().map(|rec| rec.project(set)),
                set,
                b,
                0xF165 ^ set.bits() as u64,
            );
            let model = models::precise(g as u64, b as u64);
            if model > 0.0 {
                let err = ((measured - model) / model).abs();
                if err < 0.05 {
                    within5 += 1;
                }
                if err < 0.10 {
                    within10 += 1;
                }
            }
            total += 1;
        }
    }
    println!(
        "\nmeasurements within 5% of the precise model: {within5}/{total} \
         (paper: more than 95%); within 10%: {within10}/{total}"
    );

    Ok(())
}
