//! Figure 10 — space-allocation heuristics vs exhaustive search on the
//! deeper configurations `(ABCD(ABC(A BC(B C)) D))` and
//! `(ABCD(AB BCD(BC BD CD)))`.

use msa_bench::{
    alloc_error_row, m_sweep, paper_trace, parse_config_leaves, pct, print_table, stats_abcd,
};
use msa_collision::LinearModel;
use msa_optimizer::config::ParseError;
use msa_optimizer::cost::CostContext;

fn main() -> Result<(), ParseError> {
    let trace = paper_trace();
    let stats = stats_abcd(&trace.records);
    let model = LinearModel::paper_no_intercept();
    let ctx = CostContext::new(&stats, &model);

    for (label, notation) in [
        (
            "Figure 10(a): (ABCD(ABC(A BC(B C)) D))",
            "ABCD(ABC(A BC(B C)) D)",
        ),
        (
            "Figure 10(b): (ABCD(AB BCD(BC BD CD)))",
            "ABCD(AB BCD(BC BD CD))",
        ),
    ] {
        let cfg = parse_config_leaves(notation)?;
        let rows: Vec<Vec<String>> = m_sweep()
            .into_iter()
            .map(|m| {
                let errs = alloc_error_row(&cfg, m, &ctx);
                let mut row = vec![format!("{:.0}", m / 1000.0)];
                row.extend(errs.into_iter().map(pct));
                row
            })
            .collect();
        print_table(
            label,
            &["M (thousand)", "SL (%)", "SR (%)", "PL (%)", "PR (%)"],
            &rows,
        );
    }
    println!("\npaper: SL best except one point in 10(a) at M = 20,000.");
    Ok(())
}
