//! Table 1 — variation of the collision rate at fixed `g/b`.
//!
//! §4.4: fixing `g/b` and sweeping `b` from 300 to 3000, the precise
//! collision rate (Eq. 13) is almost constant — maximum relative
//! variation 1.4 % at `g/b = 0.25`, vanishing beyond `g/b = 4`. This is
//! what justifies precomputing the rate as a function of `g/b` alone.

use msa_bench::print_table;
use msa_collision::models;

fn main() {
    println!("Table 1: variation of the collision rate as b sweeps 300..3000");

    let ratios = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    let mut rows = Vec::new();
    for &r in &ratios {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut b = 300u64;
        while b <= 3000 {
            let g = (r * b as f64).round() as u64;
            let x = models::precise(g, b);
            lo = lo.min(x);
            hi = hi.max(x);
            b += 100;
        }
        let variation = if lo > 0.0 { (hi - lo) / lo } else { 0.0 };
        rows.push(vec![format!("{r}"), format!("{:.3}", variation * 100.0)]);
    }
    print_table(
        "max relative variation (%)",
        &["g/b", "variation (%)"],
        &rows,
    );
    println!("\npaper's Table 1: 1.4 / 0.43 / 0.15 / 0.03 / 0.004 / 0 / 0 / 0 (%)");
}
