//! Figure 13 — actual measured costs on the synthetic dataset:
//! (a) GCSL vs GS (best φ per M), (b) GCSL vs no-phantom, both
//! normalized by the actual cost of the EPES configuration.
//!
//! Unlike Figs. 11–12, the costs here are *measured*: the chosen
//! configurations are lowered to physical plans and the dataset is
//! streamed through the two-level executor, counting real probes and
//! evictions.

use msa_bench::{m_sweep, measured_cost, paper_uniform, print_table, stats_abcd};
use msa_collision::LinearModel;
use msa_core::MsaError;
use msa_optimizer::cost::{ClusterHandling, CostContext};
use msa_optimizer::planner::Plan;
use msa_optimizer::{
    epes, greedy_collision, greedy_space, AllocStrategy, Configuration, FeedingGraph,
};
use msa_stream::AttrSet;

fn main() -> Result<(), MsaError> {
    let stream = paper_uniform(4);
    let stats = stats_abcd(&stream.records);
    let model = LinearModel::paper_no_intercept();
    let mut ctx = CostContext::new(&stats, &model);
    ctx.clustering = ClusterHandling::None;
    let queries: Vec<AttrSet> = ["A", "B", "C", "D"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<_, _>>()?;
    let graph = FeedingGraph::new(&queries);

    println!(
        "Figure 13: actual costs on synthetic data ({} records)",
        stream.len()
    );

    let run = |cfg: &Configuration, alloc: &msa_optimizer::Allocation, seed: u64| -> f64 {
        let plan = Plan {
            configuration: cfg.clone(),
            allocation: alloc.clone(),
            predicted_cost: 0.0,
            predicted_update_cost: 0.0,
        };
        measured_cost(plan.to_physical(), &stream.records, seed)
    };

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for m in m_sweep() {
        let best = epes(&graph, m, &ctx);
        let actual_epes = run(&best.configuration, &best.allocation, 100);

        let gcsl = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
        let f = gcsl.final_step();
        let actual_gcsl = run(&f.configuration, &f.allocation, 100);

        // GS: best φ per M (the paper grants GS its best possible φ).
        let actual_gs = [0.6, 0.8, 1.0, 1.1, 1.2, 1.3]
            .iter()
            .map(|&phi| {
                let t = greedy_space(&graph, m, phi, &ctx);
                let s = t.final_step();
                run(&s.configuration, &s.allocation, 100)
            })
            .fold(f64::INFINITY, f64::min);

        let flat = Configuration::from_queries(&queries);
        let flat_alloc = AllocStrategy::SupernodeLinear.allocate(&flat, m, &ctx);
        let actual_flat = run(&flat, &flat_alloc, 100);

        rows_a.push(vec![
            format!("{:.0}", m / 1000.0),
            format!("{:.2}", actual_gcsl / actual_epes),
            format!("{:.2}", actual_gs / actual_epes),
        ]);
        rows_b.push(vec![
            format!("{:.0}", m / 1000.0),
            format!("{:.2}", actual_gcsl / actual_epes),
            format!("{:.2}", actual_flat / actual_epes),
        ]);
    }
    print_table(
        "Figure 13(a): GCSL vs GS (actual, relative to EPES)",
        &["M (thousand)", "GCSL", "GS (best phi)"],
        &rows_a,
    );
    print_table(
        "Figure 13(b): GCSL vs no phantom (actual, relative to EPES)",
        &["M (thousand)", "GCSL", "no phantom"],
        &rows_b,
    );
    println!(
        "\npaper: GCSL always within 3x of optimal and well below GS \
         (as low as 26% of GS at M = 60k); no-phantom is ~an order of \
         magnitude worse."
    );

    Ok(())
}
