//! Table 2 — average relative error of the four space-allocation
//! heuristics against exhaustive search, over all enumerated
//! configurations of the (synthesized) real dataset.
//!
//! Paper values (%): SL 6.0/3.0/2.2/3.2/2.3, SR 6.2/5.3/5.3/9.0/9.4,
//! PL 15.8/14.2/14.6/21.4/23.4, PR 10.1/11.4/12.4/19.7/22.7 for
//! M = 20k…100k. SL is best at every M.

use msa_bench::{alloc_error_sweep, max_phantoms, paper_trace, print_table, stats_abcd};

fn main() {
    let trace = paper_trace();
    let stats = stats_abcd(&trace.records);
    println!(
        "Table 2: average heuristic error vs ES (configurations with ≤ {} phantoms; \
         set MSA_FULL=1 for the unbounded enumeration)",
        max_phantoms()
    );

    let sweep = alloc_error_sweep(&stats);
    let mut rows = Vec::new();
    for (m, errors) in &sweep {
        let n = errors.len() as f64;
        let mut avg = [0.0f64; 4];
        for row in errors {
            for (a, e) in avg.iter_mut().zip(row) {
                *a += e / n;
            }
        }
        rows.push(vec![
            format!("{:.0}", m / 1000.0),
            format!("{:.1}", avg[0] * 100.0),
            format!("{:.1}", avg[1] * 100.0),
            format!("{:.1}", avg[2] * 100.0),
            format!("{:.1}", avg[3] * 100.0),
        ]);
    }
    print_table(
        "average relative error (%)",
        &["M (thousand)", "SL", "SR", "PL", "PR"],
        &rows,
    );
    println!(
        "\nconfigurations evaluated per M: {}",
        sweep.first().map(|(_, e)| e.len()).unwrap_or(0)
    );
    println!("paper: SL 6.0/3.0/2.2/3.2/2.3; PL up to 23.4.");
}
