//! Ablation — how should flow lengths enter the cost model?
//!
//! §5.3 divides collision rates by the average flow length `l` (Eq. 15)
//! but does not say *which* relations' rates. Three policies are
//! plausible: ignore clusteredness entirely; divide only raw relations'
//! rates (fed tables see de-clustered evictions — our default); divide
//! every relation's rate (the literal reading of §5.3's `√(g·h/l)`
//! rule). Each policy plans the trace workload; the executor measures
//! what the resulting plans actually cost.

use msa_bench::{m_sweep, measured_cost, paper_trace, print_table, stats_abcd_temporal};
use msa_collision::LinearModel;
use msa_core::MsaError;
use msa_optimizer::cost::{ClusterHandling, CostContext};
use msa_optimizer::planner::Plan;
use msa_optimizer::{greedy_collision, AllocStrategy, FeedingGraph};
use msa_stream::AttrSet;

fn main() -> Result<(), MsaError> {
    let stream = paper_trace();
    let stats = stats_abcd_temporal(&stream.records);
    let model = LinearModel::paper_no_intercept();
    let queries: Vec<AttrSet> = ["AB", "BC", "BD", "CD"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<_, _>>()?;
    let graph = FeedingGraph::new(&queries);

    println!(
        "Ablation: clustering handling (packet trace, {} records, ABCD \
         bucket-level flow length {:.1})",
        stream.len(),
        stats.flow_length(AttrSet::parse_checked("ABCD")?)
    );

    let policies = [
        ("none", ClusterHandling::None),
        ("raw-only", ClusterHandling::RawOnly),
        ("all", ClusterHandling::AllRelations),
    ];

    let mut rows = Vec::new();
    for m in m_sweep() {
        let mut row = vec![format!("{:.0}", m / 1000.0)];
        let mut configs = Vec::new();
        for (_, clustering) in policies {
            let ctx = CostContext {
                stats: &stats,
                model: &model,
                params: msa_gigascope::CostParams::paper(),
                clustering,
            };
            let trace = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
            let step = trace.final_step();
            let plan = Plan {
                configuration: step.configuration.clone(),
                allocation: step.allocation.clone(),
                predicted_cost: step.cost,
                predicted_update_cost: 0.0,
            };
            let actual = measured_cost(plan.to_physical(), &stream.records, 500);
            row.push(format!("{actual:.2}"));
            configs.push(step.configuration.notation());
        }
        rows.push(row);
        if m == m_sweep()[0] {
            for ((name, _), cfg) in policies.iter().zip(configs) {
                println!("  M={m:.0} {name}: {cfg}");
            }
        }
    }
    print_table(
        "measured per-record cost of the chosen plan",
        &["M (thousand)", "none", "raw-only", "all"],
        &rows,
    );
    println!(
        "\nreading: ignoring clusteredness overestimates collision rates \
         and can scare the planner away from beneficial phantoms; the \
         raw-only policy matches what the executor's tables experience."
    );

    Ok(())
}
