//! Recovery-latency benchmark: how far a restarted shard has to replay.
//!
//! A supervised shard that dies is rebuilt from its latest epoch-aligned
//! checkpoint and re-processes the records between that checkpoint and
//! the kill point from the replay buffer. That replay distance — the
//! `records_replayed` counter in [`msa_core::ShardHealth`] — is the
//! deterministic MTTR proxy this harness measures: it is the work a
//! recovery costs, independent of host speed, and it is what an
//! operator tunes with the epoch length (checkpoint density).
//!
//! For each deployment size the last shard is killed once at each decile
//! of its own partition and the replay distances are aggregated into
//! median / 95th-percentile / max. Before measuring, the mid-stream kill
//! is run twice and the merged [`RunReport`]s, result lists, and health
//! ledgers are asserted bit-identical — latency numbers only count if
//! recovery itself is schedule-independent. `MSA_SCALE` shrinks the
//! trace as in the other harnesses.
//!
//! Writes `results/BENCH_recovery_latency.json`.

use msa_bench::{print_table, scale, seed, CostParams, PhysicalPlan, RunReport};
use msa_core::{Hfta, MsaError, ShardFault, ShardHealth, ShardedExecutor, SupervisorPolicy};
use msa_stream::{AttrSet, Record, UniformStreamBuilder};

const EPOCH_MICROS: u64 = 500_000;

fn plan() -> Result<PhysicalPlan, MsaError> {
    // The shard-scaling plan: query set A/B/C/D under an ABCD phantom.
    let q = |name: &str, parent, buckets, is_query| -> Result<_, MsaError> {
        Ok(msa_bench::PlanNode {
            attrs: AttrSet::parse_checked(name)?,
            parent,
            buckets,
            is_query,
        })
    };
    Ok(PhysicalPlan::new(vec![
        q("ABCD", None, 8_192, false)?,
        q("A", Some(0), 2_048, true)?,
        q("B", Some(0), 2_048, true)?,
        q("C", Some(0), 2_048, true)?,
        q("D", Some(0), 2_048, true)?,
    ])?)
}

fn build(plan: &PhysicalPlan, root_seed: u64, shards: usize) -> Result<ShardedExecutor, MsaError> {
    ShardedExecutor::new(
        plan.clone(),
        CostParams::paper(),
        EPOCH_MICROS,
        root_seed,
        shards,
    )
    .map_err(|_| MsaError::State("shard count must be positive"))
}

/// Kills the last shard at shard-local record `at` and returns the run's
/// merged outputs plus that shard's health ledger.
fn drilled_run(
    plan: &PhysicalPlan,
    records: &[Record],
    root_seed: u64,
    shards: usize,
    at: u64,
) -> Result<(RunReport, Hfta, ShardHealth), MsaError> {
    let target = shards - 1;
    let mut sx = build(plan, root_seed, shards)?
        .with_shard_fault(target, ShardFault::panic_at(at))
        .with_supervision(SupervisorPolicy::default());
    sx.run(records);
    let health = sx.shard_health(target).clone();
    let (report, hfta) = sx.finish();
    Ok((report, hfta, health))
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Row {
    shards: usize,
    part_len: u64,
    kills: usize,
    median: u64,
    p95: u64,
    max: u64,
}

fn json(rows: &[Row], records: usize, root_seed: u64) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"partition_records\": {}, \"kills\": {}, \
                 \"median_records_to_recover\": {}, \"p95_records_to_recover\": {}, \
                 \"max_records_to_recover\": {}}}",
                r.shards, r.part_len, r.kills, r.median, r.p95, r.max
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"recovery_latency\",\n  \"workload\": \"uniform4_supervised\",\n  \
         \"records\": {records},\n  \"epoch_micros\": {EPOCH_MICROS},\n  \"seed\": {root_seed},\n  \
         \"metric\": \"records_to_recover\",\n  \
         \"note\": \"records_to_recover = ShardHealth.records_replayed after one injected kill: \
         the replay distance from the latest epoch-aligned checkpoint back to the kill point — \
         a host-independent MTTR proxy, bounded by the records one epoch admits. The last shard \
         is killed once at each decile of its own partition. Determinism (two drilled runs \
         bit-identical, health ledger included) is asserted before measuring.\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

fn main() -> Result<(), MsaError> {
    let records_n = ((120_000.0 * scale()).round() as usize).max(5_000);
    let stream = UniformStreamBuilder::new(4, 500)
        .records(records_n)
        .duration_secs(6.0)
        .seed(seed())
        .build();
    let records = &stream.records;
    let plan = plan()?;
    let root_seed = seed();

    println!(
        "Recovery latency under supervised restart ({} records)",
        records.len()
    );

    let mut rows = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let target = shards - 1;
        let part_len = build(&plan, root_seed, shards)?.partition(records)[target].len() as u64;

        // Determinism gate on the mid-partition kill.
        let mid = part_len / 2;
        let (r1, h1, hl1) = drilled_run(&plan, records, root_seed, shards, mid)?;
        let (r2, h2, hl2) = drilled_run(&plan, records, root_seed, shards, mid)?;
        assert_eq!(r1, r2, "{shards} shards: reports differ across runs");
        assert_eq!(
            h1.results(),
            h2.results(),
            "{shards} shards: results differ across runs"
        );
        assert_eq!(hl1, hl2, "{shards} shards: health differs across runs");
        assert_eq!(r1.records, records.len() as u64);

        let mut distances = Vec::new();
        for decile in 1..=9u64 {
            let at = part_len * decile / 10;
            let (report, _, health) = drilled_run(&plan, records, root_seed, shards, at)?;
            assert_eq!(report.records, records.len() as u64);
            assert_eq!(health.restarts, 1, "{shards} shards, kill at {at}");
            assert_eq!(
                health.records_unreplayed, 0,
                "{shards} shards, kill at {at}"
            );
            distances.push(health.records_replayed);
        }
        distances.sort_unstable();
        rows.push(Row {
            shards,
            part_len,
            kills: distances.len(),
            median: percentile(&distances, 50.0),
            p95: percentile(&distances, 95.0),
            max: *distances.last().unwrap_or(&0),
        });
    }

    assert!(
        rows.iter().any(|r| r.median > 0),
        "replay distances must be nonzero somewhere in the sweep"
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shards.to_string(),
                r.part_len.to_string(),
                r.kills.to_string(),
                r.median.to_string(),
                r.p95.to_string(),
                r.max.to_string(),
            ]
        })
        .collect();
    print_table(
        "Records to recover (replay distance) by shard count",
        &["shards", "part rec", "kills", "median", "p95", "max"],
        &table,
    );

    let out = json(&rows, records.len(), root_seed);
    std::fs::write("results/BENCH_recovery_latency.json", &out)
        .map_err(|e| MsaError::TraceIo(e.into()))?;
    println!("wrote results/BENCH_recovery_latency.json");
    Ok(())
}
