//! Figure 15 — the peak-load constraint: shrink vs shift.
//!
//! Real trace, queries {AB, BC, BD, CD}, M = 40,000. Starting from the
//! GCSL allocation, its end-of-epoch cost `E_u` is computed; for
//! `E_p = 82%…98%` of `E_u` the allocation is repaired with shrink and
//! with shift, and the repaired configurations' *actual* per-record
//! costs are measured, normalized by the unconstrained allocation's
//! actual cost.
//!
//! Paper: shift wins when `E_p` is close to `E_u`; shrink wins when the
//! gap is large.

use msa_bench::{measured_cost, paper_trace, print_table, scale, stats_abcd_temporal};
use msa_collision::LinearModel;
use msa_core::MsaError;
use msa_optimizer::cost::{end_of_epoch_cost, CostContext};
use msa_optimizer::peakload::{enforce_peak_load, PeakLoadMethod};
use msa_optimizer::planner::Plan;
use msa_optimizer::{greedy_collision, AllocStrategy, FeedingGraph};
use msa_stream::AttrSet;

fn main() -> Result<(), MsaError> {
    let stream = paper_trace();
    let stats = stats_abcd_temporal(&stream.records);
    let model = LinearModel::paper_no_intercept();
    let ctx = CostContext::new(&stats, &model);
    let queries: Vec<AttrSet> = ["AB", "BC", "BD", "CD"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<_, _>>()?;
    let graph = FeedingGraph::new(&queries);
    let m = 40_000.0 * scale();

    let gcsl = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
    let step = gcsl.final_step();
    let cfg = &step.configuration;
    let base_alloc = &step.allocation;
    let e_u = end_of_epoch_cost(cfg, base_alloc, &ctx);

    println!(
        "Figure 15: peak-load constraint (M = {m:.0}, config {}, E_u = {e_u:.0})",
        cfg
    );

    let run = |alloc: &msa_optimizer::Allocation, seed: u64| -> f64 {
        let plan = Plan {
            configuration: cfg.clone(),
            allocation: alloc.clone(),
            predicted_cost: 0.0,
            predicted_update_cost: 0.0,
        };
        measured_cost(plan.to_physical(), &stream.records, seed)
    };
    let base_cost = run(base_alloc, 300);

    let mut rows = Vec::new();
    for pct in (82..=98).step_by(2) {
        let e_p = e_u * pct as f64 / 100.0;
        let shrink = enforce_peak_load(cfg, base_alloc, &ctx, e_p, PeakLoadMethod::Shrink);
        let shift = enforce_peak_load(cfg, base_alloc, &ctx, e_p, PeakLoadMethod::Shift);
        let c_shrink = run(&shrink.allocation, 300);
        let c_shift = run(&shift.allocation, 300);
        rows.push(vec![
            format!("{pct}"),
            format!("{:.3}", c_shrink / base_cost),
            format!("{:.3}", c_shift / base_cost),
            format!("{}/{}", shrink.feasible, shift.feasible),
        ]);
    }
    print_table(
        "relative actual cost after repair",
        &["peak load constraint (%)", "shrink", "shift", "feasible"],
        &rows,
    );
    println!(
        "\npaper: shift better near 98%; shrink better when E_p is far \
         below E_u (~82%)."
    );

    Ok(())
}
