//! Figure 14 — actual measured costs on the (synthesized) real trace,
//! query set {AB, BC, BD, CD}: (a) GCSL vs GS, (b) GCSL vs no phantom.
//!
//! Flow lengths are "derived temporally" as in the paper: the clustering
//! of the packet trace enters the cost model by dividing raw tables'
//! collision rates by their average run lengths.

use msa_bench::{m_sweep, measured_cost, paper_trace, print_table, stats_abcd_temporal};
use msa_collision::LinearModel;
use msa_core::MsaError;
use msa_optimizer::cost::CostContext;
use msa_optimizer::planner::Plan;
use msa_optimizer::{
    epes, greedy_collision, greedy_space, AllocStrategy, Configuration, FeedingGraph,
};
use msa_stream::AttrSet;

fn main() -> Result<(), MsaError> {
    let stream = paper_trace();
    let stats = stats_abcd_temporal(&stream.records);
    let model = LinearModel::paper_no_intercept();
    let ctx = CostContext::new(&stats, &model); // RawOnly clustering default
    let queries: Vec<AttrSet> = ["AB", "BC", "BD", "CD"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<_, _>>()?;
    let graph = FeedingGraph::new(&queries);

    println!(
        "Figure 14: actual costs on the packet trace ({} records, \
         ABCD groups = {}, ABCD flow length = {:.2})",
        stream.len(),
        stats.groups(AttrSet::parse_checked("ABCD")?),
        stats.flow_length(AttrSet::parse_checked("ABCD")?),
    );

    let run = |cfg: &Configuration, alloc: &msa_optimizer::Allocation, seed: u64| -> f64 {
        let plan = Plan {
            configuration: cfg.clone(),
            allocation: alloc.clone(),
            predicted_cost: 0.0,
            predicted_update_cost: 0.0,
        };
        measured_cost(plan.to_physical(), &stream.records, seed)
    };

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for m in m_sweep() {
        let best = epes(&graph, m, &ctx);
        let actual_epes = run(&best.configuration, &best.allocation, 200);

        let gcsl = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
        let f = gcsl.final_step();
        let actual_gcsl = run(&f.configuration, &f.allocation, 200);

        let actual_gs = [0.6, 0.8, 1.0, 1.1, 1.2, 1.3]
            .iter()
            .map(|&phi| {
                let t = greedy_space(&graph, m, phi, &ctx);
                let s = t.final_step();
                run(&s.configuration, &s.allocation, 200)
            })
            .fold(f64::INFINITY, f64::min);

        let flat = Configuration::from_queries(&queries);
        let flat_alloc = AllocStrategy::SupernodeLinear.allocate(&flat, m, &ctx);
        let actual_flat = run(&flat, &flat_alloc, 200);

        rows_a.push(vec![
            format!("{:.0}", m / 1000.0),
            format!("{:.2}", actual_gcsl / actual_epes),
            format!("{:.2}", actual_gs / actual_epes),
        ]);
        rows_b.push(vec![
            format!("{:.0}", m / 1000.0),
            format!("{:.2}", actual_gcsl / actual_epes),
            format!("{:.2}", actual_flat / actual_epes),
        ]);
    }
    print_table(
        "Figure 14(a): GCSL vs GS (actual, relative to EPES)",
        &["M (thousand)", "GCSL", "GS (best phi)"],
        &rows_a,
    );
    print_table(
        "Figure 14(b): GCSL vs no phantom (actual, relative to EPES)",
        &["M (thousand)", "GCSL", "no phantom"],
        &rows_b,
    );
    println!(
        "\npaper: GCSL outperforms GS; phantoms give up to ~100x \
         improvement over the no-phantom configuration."
    );

    Ok(())
}
