//! Degraded-answer accuracy: guaranteed bound width vs actual error vs
//! shed rate, across the degradation-policy sweep.
//!
//! A 4× burst overruns a deliberately tight budget (0.6× the organic
//! peak), so the overload guard must degrade. Each
//! [`DegradationPolicy`] is run through the identical incident twice —
//! the merged [`BoundsReport`]s must be bit-identical before a row
//! counts — and the row records what the policy *promised* (the width
//! budget), what it *reported* (the guaranteed interval width), and
//! what was *actually wrong* (the max per-query |observed − truth|).
//! Soundness is asserted in-bench: the truth sits inside every
//! interval, so `actual_error <= bound_width` in every row.
//!
//! Two scenario groups: `pure_shed` (guard shedding is the only loss —
//! the width is exactly the shed mass, and `exact-or-stall` holds the
//! degenerate interval) and `channel_faults` (8% eviction loss + 4%
//! duplication on top — uncontrolled loss the guard meters against the
//! same promise, breaching tight budgets deterministically).
//!
//! Writes `results/BENCH_degraded_accuracy.json`.

use msa_bench::{print_table, scale, seed, CostParams, PhysicalPlan, PlanNode};
use msa_core::{
    AttrSet, BoundsReport, Burst, DegradationPolicy, Executor, FaultPlan, GuardPolicy, MsaError,
    Record,
};
use msa_stream::UniformStreamBuilder;

const EPOCH_MICROS: u64 = 1_000_000;

fn plan() -> Result<PhysicalPlan, MsaError> {
    let q = |name: &str, parent, buckets, is_query| -> Result<_, MsaError> {
        Ok(PlanNode {
            attrs: AttrSet::parse_checked(name)?,
            parent,
            buckets,
            is_query,
        })
    };
    Ok(PhysicalPlan::new(vec![
        q("AB", None, 64, false)?,
        q("A", Some(0), 16, true)?,
        q("B", Some(0), 16, true)?,
    ])?)
}

struct Row {
    group: &'static str,
    policy: String,
    promised: Option<u64>,
    shed: u64,
    denied: u64,
    shed_rate_pct: f64,
    bound_width: u64,
    actual_error: u64,
    breached: bool,
}

fn measure(
    group: &'static str,
    policy: DegradationPolicy,
    records: &[Record],
    e_p: f64,
    faults: Option<&FaultPlan>,
) -> Result<Row, MsaError> {
    let base_plan = plan()?;
    let run = || {
        let mut guard = GuardPolicy::new(e_p).with_degradation(policy);
        guard.recover_ratio = 0.6;
        guard.shed_factor = 4;
        let mut ex = Executor::new(base_plan.clone(), CostParams::paper(), EPOCH_MICROS, seed())
            .with_guard(guard);
        if let Some(f) = faults {
            ex = ex.with_faults(f);
        }
        ex.run(records);
        ex.flush_epoch();
        let bounds = ex.bounds();
        let (report, hfta) = ex.finish();
        (bounds, BoundsReport::at_finish(&report, &hfta), report)
    };
    // Determinism gate: accuracy numbers only count if the intervals
    // are schedule- and rerun-independent.
    let (live1, final1, report) = run();
    let (live2, final2, _) = run();
    assert!(live1 == live2, "{group}/{policy}: live bounds differ");
    assert!(final1 == final2, "{group}/{policy}: final bounds differ");

    let truth = records.len() as u64;
    let mut bound_width = 0u64;
    let mut actual_error = 0u64;
    for qb in &final1.queries {
        // Soundness in-bench: the interval must contain the truth.
        assert!(
            qb.contains(truth),
            "{group}/{policy}: truth {truth} outside [{}, {}]",
            qb.lo(),
            qb.hi()
        );
        bound_width = bound_width.max(qb.width());
        actual_error = actual_error.max(qb.observed.abs_diff(truth));
    }
    assert!(
        actual_error <= bound_width,
        "{group}/{policy}: error {actual_error} above width {bound_width}"
    );
    Ok(Row {
        group,
        policy: policy.to_string(),
        promised: match policy {
            DegradationPolicy::ExactOrStall => Some(0),
            DegradationPolicy::BoundedApprox { max_width } => Some(max_width),
            DegradationPolicy::BestEffort => None,
        },
        shed: report.records_shed,
        denied: report.records_shed_denied,
        shed_rate_pct: 100.0 * report.records_shed as f64 / records.len() as f64,
        bound_width,
        actual_error,
        breached: final1.bound_breached,
    })
}

fn json(rows: &[Row], records: usize, root_seed: u64) -> String {
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"group\": \"{}\", \"policy\": \"{}\", \"promised_max_width\": {}, \
                 \"records_shed\": {}, \"sheds_denied\": {}, \"shed_rate_pct\": {:.3}, \
                 \"bound_width\": {}, \"actual_error\": {}, \"bound_breached\": {}}}",
                r.group,
                r.policy,
                r.promised.map_or("null".to_string(), |w| w.to_string()),
                r.shed,
                r.denied,
                r.shed_rate_pct,
                r.bound_width,
                r.actual_error,
                r.breached
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"degraded_accuracy\",\n  \"workload\": \"uniform4_burst4x\",\n  \
         \"records\": {records},\n  \"epoch_micros\": {EPOCH_MICROS},\n  \"seed\": {root_seed},\n  \
         \"note\": \"Each row is one DegradationPolicy through the identical 4x-burst incident, \
         run twice with bit-identical BoundsReports asserted before counting. bound_width is the \
         widest per-query guaranteed interval; actual_error is the max per-query \
         |observed - truth|; soundness (truth inside every interval, so error <= width) is \
         asserted in-bench. pure_shed rows lose records only to guard shedding; channel_faults \
         rows add 8% eviction loss + 4% duplication, uncontrolled loss that breaches tight \
         promises deterministically.\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

fn main() -> Result<(), MsaError> {
    let records_n = ((24_000.0 * scale()).round() as usize).max(6_000);
    let organic = UniformStreamBuilder::new(4, 50)
        .records(records_n)
        .duration_secs(6.0)
        .seed(seed())
        .build();
    let burst = FaultPlan::new(17).with_burst(Burst {
        start_epoch: 2,
        epochs: 2,
        amplification: 4,
        fresh_groups: false,
    });
    let records = burst.apply_to_stream(&organic.records, EPOCH_MICROS);

    // Calibrate the organic peak, then promise less: the burst must
    // force the guard onto its degradation ladder.
    let mut probe = Executor::new(plan()?, CostParams::paper(), EPOCH_MICROS, seed());
    probe.run(&organic.records);
    let (probe_report, _) = probe.finish();
    let planned = probe_report
        .epoch_costs
        .iter()
        .map(|&(_, i, f)| i + f)
        .fold(0.0, f64::max);
    let e_p = 0.6 * planned;
    println!(
        "Degraded-answer accuracy: {} records, burst 4x in epochs 2..4, E_p = {e_p:.0}",
        records.len()
    );

    let policies = [
        DegradationPolicy::ExactOrStall,
        DegradationPolicy::BoundedApprox { max_width: 64 },
        DegradationPolicy::BoundedApprox { max_width: 512 },
        DegradationPolicy::BoundedApprox { max_width: 4096 },
        DegradationPolicy::BestEffort,
    ];
    let channel = FaultPlan::new(0xACC)
        .with_eviction_loss(0.08)
        .with_eviction_duplication(0.04);
    let mut rows = Vec::new();
    for policy in policies {
        rows.push(measure("pure_shed", policy, &records, e_p, None)?);
    }
    for policy in policies {
        rows.push(measure(
            "channel_faults",
            policy,
            &records,
            e_p,
            Some(&channel),
        )?);
    }

    // The sweep's shape: exactness costs everything or nothing.
    assert!(
        rows[0].bound_width == 0 && rows[0].shed == 0,
        "exact-or-stall must hold the degenerate interval when losses are controllable"
    );
    assert!(
        rows.iter().any(|r| r.shed > 0),
        "the burst must force shedding somewhere in the sweep"
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.group.to_string(),
                r.policy.clone(),
                r.promised.map_or("-".into(), |w| w.to_string()),
                r.shed.to_string(),
                r.denied.to_string(),
                format!("{:.2}", r.shed_rate_pct),
                r.bound_width.to_string(),
                r.actual_error.to_string(),
                r.breached.to_string(),
            ]
        })
        .collect();
    print_table(
        "Bound width vs actual error vs shed rate",
        &[
            "group", "policy", "promise", "shed", "denied", "shed %", "width", "error", "breach",
        ],
        &table,
    );

    let out = json(&rows, records.len(), seed());
    std::fs::write("results/BENCH_degraded_accuracy.json", &out)
        .map_err(|e| MsaError::TraceIo(e.into()))?;
    println!("wrote results/BENCH_degraded_accuracy.json");
    Ok(())
}
