//! Hot-swap cost: what does an adaptive re-plan pause, and what does
//! it buy?
//!
//! The scenario is the adaptive battery's acceptance drill at bench
//! scale: the deployment plans an AB phantom for the organic stream
//! (slope µ calibrated in-bench from an organic prefix — phase A),
//! then a migrating hotspot arrives whose eviction ping-pong drives
//! the phantom table's observed collision rate off the cost model's
//! prediction. The drift detector re-plans in the background and
//! commits a hot-swap at an epoch boundary.
//!
//! Reported, all record-counted where the runtime is concerned:
//!
//! * **swap pause** — the records served on the *stale* plan between
//!   the boundary where the re-plan was staged and the boundary where
//!   the transaction committed (the staging window; the swap itself
//!   runs between records, so nothing is dropped or reordered);
//! * **throughput before/after** the first committed swap (wall-clock
//!   is measured here in the bench — the runtime itself never reads a
//!   clock, see lint rule D006);
//! * **collision rate and drift before/after** — the telemetry the
//!   detector acted on, and proof the swap moved it back under the
//!   margin.
//!
//! Determinism is asserted in-bench: the whole adaptive trajectory —
//! merged report, closed-epoch results, swap ledger, per-epoch drift
//! and collision readings — must be bit-identical across two runs
//! before any number is reported. Writes
//! `results/BENCH_replan_swap.json`.

use msa_bench::{print_table, scale};
use msa_core::adaptive::calibration_points;
use msa_core::{
    AdaptivePolicy, AdaptiveRuntime, AttrSet, DatasetStats, DriftKind, DriftPlan, LinearModel,
    MsaError, Record, ReplanTrigger, RuntimeOptions, RuntimePolicy,
};
use msa_stream::UniformStreamBuilder;
use std::time::Instant;

const EPOCH_MICROS: u64 = 1_000_000;
// The drill is a fixed scenario, not a parameter sweep: whether the
// re-planner's improvement clears the commit margin depends on the
// exact collision trajectory, so the seed is pinned rather than read
// from `MSA_SEED`.
const SEED: u64 = 0xADAB;
const RECORDS_PER_EPOCH: usize = 800;
const M_WORDS: f64 = 8_000.0;

fn policy() -> RuntimePolicy {
    RuntimePolicy {
        adaptive: AdaptivePolicy {
            check_every_epochs: 1,
            drift_threshold: 0.5,
            min_probes: 300,
        },
        improvement_margin: 0.01,
        backoff_epochs: 2,
        // The bench measures the re-plan path, not the µ-refit path.
        recalibrate: false,
    }
}

/// One epoch's telemetry, read after the slice ran. Everything here is
/// seeded and record-counted, so two runs must agree bit-for-bit.
#[derive(Debug, PartialEq, Clone, Copy)]
struct EpochRead {
    epoch: u64,
    records: usize,
    drift: f64,
    collision_rate: f64,
    committed_so_far: u64,
}

struct Trajectory {
    reads: Vec<EpochRead>,
    wall_us: Vec<u128>,
    out: msa_core::RuntimeOutput,
}

fn run_trajectory(
    records: &[Record],
    stats: &DatasetStats,
    model: LinearModel,
) -> Result<Trajectory, MsaError> {
    let mut opts = RuntimeOptions::new(M_WORDS);
    opts.seed = SEED;
    opts.policy = policy();
    opts.model = model;
    let mut rt = AdaptiveRuntime::new(
        vec![AttrSet::parse_checked("A")?, AttrSet::parse_checked("B")?],
        stats.clone(),
        opts,
    )?;
    assert!(
        rt.current_plan()
            .configuration
            .contains(AttrSet::parse_checked("AB")?),
        "the organic plan must instantiate the AB phantom"
    );
    let mut reads = Vec::new();
    let mut wall_us = Vec::new();
    let mut i = 0;
    while i < records.len() {
        let epoch = records[i].ts_micros / EPOCH_MICROS;
        let end = i + records[i..].partition_point(|r| r.ts_micros / EPOCH_MICROS == epoch);
        let t = Instant::now();
        rt.run(&records[i..end])?;
        wall_us.push(t.elapsed().as_micros());
        let observed = rt.executor().table_stats();
        let probes: u64 = observed.iter().map(|(_, t)| t.probes).sum();
        let collisions: u64 = observed.iter().map(|(_, t)| t.collisions).sum();
        reads.push(EpochRead {
            epoch,
            records: end - i,
            drift: rt.current_drift(),
            collision_rate: if probes == 0 {
                0.0
            } else {
                collisions as f64 / probes as f64
            },
            committed_so_far: rt
                .replans()
                .iter()
                .filter(|e| e.report.outcome.committed())
                .count() as u64,
        });
        i = end;
    }
    Ok(Trajectory {
        reads,
        wall_us,
        out: rt.finish(),
    })
}

#[allow(clippy::too_many_arguments)]
fn json(
    epochs: u64,
    records: usize,
    commit_epoch: u64,
    pause_records: usize,
    before: EpochRead,
    after: EpochRead,
    rps_before: f64,
    rps_after: f64,
    committed: u64,
    reads: &[EpochRead],
) -> String {
    let rows: Vec<String> = reads
        .iter()
        .map(|r| {
            format!(
                "    {{\"epoch\": {}, \"records\": {}, \"drift\": {:.6}, \
                 \"collision_rate\": {:.6}, \"replans_committed\": {}}}",
                r.epoch, r.records, r.drift, r.collision_rate, r.committed_so_far
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"replan_swap\",\n  \"workload\": \"uniform2_hotspot70_migrating\",\n  \
         \"epochs\": {epochs},\n  \"records\": {records},\n  \"epoch_micros\": {EPOCH_MICROS},\n  \
         \"seed\": {},\n  \"m_words\": {M_WORDS},\n  \"replans_committed\": {committed},\n  \
         \"first_commit_epoch\": {commit_epoch},\n  \"swap_pause_records\": {pause_records},\n  \
         \"drift_before\": {:.6},\n  \"drift_after\": {:.6},\n  \
         \"collision_rate_before\": {:.6},\n  \"collision_rate_after\": {:.6},\n  \
         \"throughput_before_rps\": {:.0},\n  \"throughput_after_rps\": {:.0},\n  \
         \"note\": \"swap_pause_records counts records served on the stale plan between the \
         staging boundary and the commit boundary; the swap transaction itself runs between \
         records at the barrier, so none are dropped or reordered. before = the epoch whose \
         telemetry triggered the committed re-plan, after = the final epoch under the new plan. \
         Throughput is bench-side wall clock (the runtime never reads one, lint rule D006); all \
         record-counted artifacts are asserted bit-identical across two runs before reporting.\",\n  \
         \"epoch_rows\": [\n{}\n  ]\n}}\n",
        SEED,
        before.drift,
        after.drift,
        before.collision_rate,
        after.collision_rate,
        rps_before,
        rps_after,
        rows.join(",\n")
    )
}

fn main() -> Result<(), MsaError> {
    // Fixed per-epoch density (the collision dynamics the scenario is
    // built around); MSA_SCALE trims the number of epochs.
    let epochs = ((20.0 * scale()).round() as u64).max(6);
    let organic = UniformStreamBuilder::new(2, 4_000)
        .records(RECORDS_PER_EPOCH * epochs as usize)
        .duration_secs(epochs as f64)
        .seed(SEED ^ 0x77)
        .attr_domains(vec![80, 80])
        .build()
        .records;
    let records = DriftPlan::new(
        0xD205,
        DriftKind::HotspotMigration {
            share_pct: 70,
            period_epochs: 3,
        },
        1,
        epochs,
    )
    .apply_to_stream(&organic, EPOCH_MICROS);
    let first_epoch = &organic[..organic.partition_point(|r| r.ts_micros / EPOCH_MICROS < 1)];
    let stats = DatasetStats::compute(first_epoch, AttrSet::parse_checked("AB")?);

    // Phase A: calibrate the slope on the organic prefix, under the
    // same plan the drill deploys.
    let calibrated = {
        let mut copts = RuntimeOptions::new(M_WORDS);
        copts.seed = SEED;
        copts.policy = RuntimePolicy::frozen();
        let mut cal = AdaptiveRuntime::new(
            vec![AttrSet::parse_checked("A")?, AttrSet::parse_checked("B")?],
            stats.clone(),
            copts,
        )?;
        cal.run(first_epoch)?;
        let pts = calibration_points(
            cal.stats(),
            &cal.current_plan().configuration,
            &cal.current_plan().allocation,
            &cal.executor().table_stats(),
            &policy().adaptive,
        );
        assert!(!pts.is_empty(), "calibration needs live telemetry");
        LinearModel::fit_through_intercept(0.0, pts)
    };
    println!(
        "Replan-swap: {} records over {epochs} epochs, calibrated mu = {:.4}",
        records.len(),
        calibrated.mu
    );

    // Determinism gate: the numbers only count if the trajectory is
    // rerun-independent (wall times excepted — they are bench-side).
    let t1 = run_trajectory(&records, &stats, calibrated)?;
    let t2 = run_trajectory(&records, &stats, calibrated)?;
    assert!(t1.reads == t2.reads, "per-epoch telemetry differs");
    assert!(t1.out.report == t2.out.report, "merged reports differ");
    assert!(
        t1.out.hfta.results() == t2.out.hfta.results(),
        "closed-epoch results differ"
    );
    assert!(t1.out.replans == t2.out.replans, "swap ledgers differ");

    let table: Vec<Vec<String>> = t1
        .reads
        .iter()
        .map(|r| {
            vec![
                r.epoch.to_string(),
                r.records.to_string(),
                format!("{:.4}", r.drift),
                format!("{:.4}", r.collision_rate),
                r.committed_so_far.to_string(),
            ]
        })
        .collect();
    print_table(
        "Adaptive trajectory (per epoch)",
        &["epoch", "records", "drift", "coll rate", "committed"],
        &table,
    );

    let committed: Vec<_> = t1
        .out
        .replans
        .iter()
        .filter(|e| e.trigger == ReplanTrigger::Drift && e.report.outcome.committed())
        .collect();
    assert!(
        !committed.is_empty(),
        "the drill must commit a drift-triggered swap; ledger: {:?}",
        t1.out.replans
    );
    let commit_epoch = committed[0].report.epoch;
    // Staged entering epoch C-1, committed entering epoch C: the
    // records of epoch C-1 ran on the stale plan inside the window.
    let pause_records = records
        .iter()
        .filter(|r| r.ts_micros / EPOCH_MICROS == commit_epoch - 1)
        .count();
    let before = t1
        .reads
        .iter()
        .rev()
        .find(|r| r.epoch < commit_epoch && r.drift > policy().adaptive.drift_threshold)
        .copied()
        .unwrap_or(t1.reads[0]);
    let after = t1.reads[t1.reads.len() - 1];
    assert!(
        after.drift <= policy().adaptive.drift_threshold,
        "post-swap drift {} must sit within the margin",
        after.drift
    );

    let (mut rec_b, mut us_b, mut rec_a, mut us_a) = (0usize, 0u128, 0usize, 0u128);
    for (r, &us) in t1.reads.iter().zip(&t1.wall_us) {
        if r.epoch < commit_epoch {
            rec_b += r.records;
            us_b += us;
        } else {
            rec_a += r.records;
            us_a += us;
        }
    }
    let rps_before = rec_b as f64 / (us_b.max(1) as f64 / 1e6);
    let rps_after = rec_a as f64 / (us_a.max(1) as f64 / 1e6);

    println!(
        "first commit at epoch {commit_epoch}: pause {pause_records} records, \
         drift {:.4} -> {:.4}, collision rate {:.4} -> {:.4}, \
         throughput {rps_before:.0} -> {rps_after:.0} rec/s",
        before.drift, after.drift, before.collision_rate, after.collision_rate,
    );

    let out = json(
        epochs,
        records.len(),
        commit_epoch,
        pause_records,
        before,
        after,
        rps_before,
        rps_after,
        t1.out.report.replans_committed,
        &t1.reads,
    );
    std::fs::write("results/BENCH_replan_swap.json", &out)
        .map_err(|e| MsaError::TraceIo(e.into()))?;
    println!("wrote results/BENCH_replan_swap.json");
    Ok(())
}
