//! Figure 8 / Eq. 16 — the linear fit of the low-collision-rate region.
//!
//! The paper zooms into `x < 0.4`, observes the curve is nearly
//! straight, and fits `x = 0.0267 + 0.354·(g/b)` with ≈ 5 % average
//! error. The slope/intercept feed the space-allocation analysis of
//! Section 5.

use msa_bench::{f4, print_table};
use msa_collision::curve::LinearFit;
use msa_collision::models;
use msa_collision::{PAPER_ALPHA, PAPER_MU};

fn main() {
    println!("Figure 8 / Eq. 16: linear fit of the low-rate region (x < 0.4)");

    let fit = LinearFit::fit_low_region(0.4);
    let mut rows = Vec::new();
    for i in 0..=20 {
        let r = i as f64 * 0.05;
        rows.push(vec![
            format!("{r:.2}"),
            f4(models::asymptotic(r)),
            f4(fit.eval(r)),
        ]);
    }
    print_table(
        "actual collision rate vs regression",
        &["g/b", "actual", "regression"],
        &rows,
    );

    println!("\nfitted:  x = {:.4} + {:.4}·(g/b)", fit.alpha, fit.mu);
    println!("paper:   x = {PAPER_ALPHA} + {PAPER_MU}·(g/b)");
    println!(
        "avg relative error (x > 0.05 region): {:.2}% (paper: ~5%)",
        fit.avg_relative_error(1.05, 0.05) * 100.0
    );
}
