//! Figure 7 — the collision-rate curve as a function of `g/b`, and its
//! piecewise regression.
//!
//! The paper divides the curve over `(0, 50]` into 6 intervals and fits
//! a two-dimensional regression per interval with ≤ 5 % maximum
//! relative error (average below 1 %).

use msa_bench::{f4, print_table};
use msa_collision::curve::PiecewiseCurve;
use msa_collision::models;

fn main() {
    println!("Figure 7: collision rate vs g/b over (0, 50]");

    let curve = PiecewiseCurve::fit_default();
    let mut rows = Vec::new();
    for i in 0..=25 {
        let r = i as f64 * 2.0;
        rows.push(vec![
            format!("{r}"),
            f4(models::asymptotic(r)),
            f4(curve.eval(r)),
        ]);
    }
    print_table(
        "curve and regression",
        &["g/b", "precise", "regression"],
        &rows,
    );

    println!("\nregression segments:");
    for seg in curve.segments() {
        println!(
            "  [{:>5.2}, {:>5.2}): x = {:+.5} {:+.5}r {:+.6}r^2",
            seg.lo, seg.hi, seg.coef[0], seg.coef[1], seg.coef[2]
        );
    }
    println!(
        "\nmax relative error over [0.05, 50]: {:.2}% (paper target: 5%)",
        curve.max_relative_error(0.05, 50.0) * 100.0
    );
}
