//! Shared infrastructure for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation (Section 6) has a
//! binary in `src/bin/`; this library holds what they share: the
//! calibrated datasets, dataset-statistics helpers, actual-cost
//! measurement through the executor, and plain-text table rendering.
//!
//! Environment knobs (all optional):
//!
//! * `MSA_SCALE` — fraction of the paper-scale datasets to generate
//!   (default 1.0 = the full 860 k-record trace / 1 M-record synthetic
//!   streams). Smaller values make every binary proportionally faster.
//! * `MSA_SEED` — RNG seed (default 42).

#![deny(unsafe_code)]

use msa_optimizer::config::ParseError;
use msa_optimizer::cost::{per_record_cost, CostContext};
use msa_optimizer::{Allocation, Configuration};
use msa_stream::gen::GeneratedStream;
use msa_stream::{
    AttrSet, DatasetStats, PacketTraceBuilder, Record, TraceProfile, UniformStreamBuilder,
};

pub use msa_gigascope::{CostParams, Executor, PhysicalPlan, PlanNode, RunReport};

/// Reads `MSA_SCALE` (default 1.0, clamped to `(0, 1]`).
pub fn scale() -> f64 {
    std::env::var("MSA_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|v| v.clamp(1e-3, 1.0))
        .unwrap_or(1.0)
}

/// Reads `MSA_SEED` (default 42).
pub fn seed() -> u64 {
    std::env::var("MSA_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(42)
}

/// The synthesized "real" packet trace (§6.1), scaled by [`scale`].
pub fn paper_trace() -> GeneratedStream {
    PacketTraceBuilder::new(TraceProfile::paper_scaled(scale()))
        .seed(seed())
        .build()
}

/// The de-clustered variant used to validate the collision model (§4.2).
pub fn paper_trace_declustered() -> GeneratedStream {
    PacketTraceBuilder::new(TraceProfile::paper_scaled(scale()))
        .seed(seed())
        .build_declustered()
}

/// The synthetic uniform dataset (§6.1): `dims`-dimensional tuples with
/// the group count the paper matched to the real data.
pub fn paper_uniform(dims: usize) -> GeneratedStream {
    let groups = ((2837.0 * scale()).round() as usize).max(8);
    let records = ((1_000_000.0 * scale()).round() as usize).max(1000);
    UniformStreamBuilder::new(dims, groups)
        .records(records)
        .seed(seed())
        .build()
}

/// Statistics over all non-empty subsets of `ABCD` for a dataset.
pub fn stats_abcd(records: &[Record]) -> DatasetStats {
    DatasetStats::compute(records, AttrSet::from_attrs(0..4))
}

/// Like [`stats_abcd`], with flow lengths derived the paper's way —
/// bucket-level occupant run lengths (§4.3), which survive flow
/// interleaving — instead of consecutive-record runs.
pub fn stats_abcd_temporal(records: &[Record]) -> DatasetStats {
    let mut stats = stats_abcd(records);
    let sets: Vec<AttrSet> = stats.known_sets().collect();
    for (set, l) in msa_gigascope::table::temporal_flow_lengths(records, &sets, 2048, 0xF10) {
        stats.set_flow_length(set, l);
    }
    stats
}

/// Memory budgets the paper sweeps (words), scaled by [`scale`] so that
/// the `M : groups` ratio — which is what determines collision rates —
/// matches the paper at any scale.
pub fn m_sweep() -> Vec<f64> {
    [20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0]
        .into_iter()
        .map(|m| (m * scale()).max(500.0))
        .collect()
}

/// Streams `records` through a physical plan and returns the measured
/// per-record intra-epoch cost (single epoch — the paper's actual-cost
/// experiments measure maintenance cost).
pub fn measured_cost(plan: PhysicalPlan, records: &[Record], run_seed: u64) -> f64 {
    let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, run_seed).discard_results();
    ex.run(records);
    ex.report().per_record_cost()
}

/// Model-predicted per-record cost of `(cfg, alloc)` — convenience
/// wrapper matching the experiment binaries' call shape.
pub fn predicted_cost(cfg: &Configuration, alloc: &Allocation, ctx: &CostContext<'_>) -> f64 {
    per_record_cost(cfg, alloc, ctx)
}

/// Renders rows as an aligned plain-text table with a header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Parses a configuration notation treating its leaves as the queries
/// (the experiment configurations of Figs. 9–10 define queries
/// implicitly as their leaf relations).
///
/// # Errors
/// Returns the underlying [`ParseError`] when `notation` is malformed.
pub fn parse_config_leaves(notation: &str) -> Result<Configuration, ParseError> {
    let skeleton = Configuration::parse(notation, &[])?;
    let leaves: Vec<AttrSet> = skeleton.leaves().collect();
    Configuration::parse(notation, &leaves)
}

/// One row of a Fig. 9/10-style experiment: for each heuristic, the
/// relative error (%) of its cost against the (numeric) exhaustive
/// optimum, for a fixed configuration and budget.
pub fn alloc_error_row(cfg: &Configuration, m_words: f64, ctx: &CostContext<'_>) -> Vec<f64> {
    let es = msa_optimizer::alloc::allocate_numeric(cfg, m_words, ctx, 400);
    let c_es = per_record_cost(cfg, &es, ctx);
    msa_optimizer::AllocStrategy::HEURISTICS
        .iter()
        .map(|strat| {
            let a = strat.allocate(cfg, m_words, ctx);
            let c = per_record_cost(cfg, &a, ctx);
            ((c - c_es) / c_es).max(0.0)
        })
        .collect()
}

/// Enumerates all valid configurations over `queries` with at most
/// `max_phantoms` phantoms (a configuration is valid when every phantom
/// feeds at least two relations — the paper shows childless/one-child
/// phantoms are never beneficial).
pub fn enumerate_phantom_configs(queries: &[AttrSet], max_phantoms: usize) -> Vec<Configuration> {
    let graph = msa_optimizer::FeedingGraph::new(queries);
    let candidates = graph.phantom_candidates();
    assert!(candidates.len() <= 20, "too many candidates to enumerate");
    let mut out = Vec::new();
    for mask in 0u64..(1 << candidates.len()) {
        if (mask.count_ones() as usize) > max_phantoms {
            continue;
        }
        let phantoms: Vec<AttrSet> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let cfg = Configuration::with_phantoms(queries, &phantoms);
        if phantoms.iter().all(|&p| cfg.children(p).count() >= 2) {
            out.push(cfg);
        }
    }
    out
}

/// Maximum phantom count per configuration in the Table 2/3 sweeps:
/// 3 by default (232 configurations over {A,B,C,D}), unlimited with
/// `MSA_FULL=1` (the paper's "all possible configurations").
pub fn max_phantoms() -> usize {
    match std::env::var("MSA_FULL").as_deref() {
        Ok("1") => usize::MAX,
        _ => 3,
    }
}

/// The Table 2/3 sweep: per budget M, the SL/SR/PL/PR relative errors
/// (vs numeric ES) of every enumerated configuration.
pub fn alloc_error_sweep(stats: &DatasetStats) -> Vec<(f64, Vec<Vec<f64>>)> {
    let queries: Vec<AttrSet> = (0..4).map(AttrSet::single).collect();
    let configs = enumerate_phantom_configs(&queries, max_phantoms());
    let model = msa_collision::LinearModel::paper_no_intercept();
    let ctx = CostContext::new(stats, &model);
    m_sweep()
        .into_iter()
        .map(|m| {
            let errors: Vec<Vec<f64>> = configs
                .iter()
                .map(|cfg| alloc_error_row(cfg, m, &ctx))
                .collect();
            (m, errors)
        })
        .collect()
}

/// Minimal wall-clock micro-benchmark harness.
///
/// The workspace builds with no external crates, so the `cargo bench`
/// targets use this instead of a benchmarking framework: calibrate an
/// iteration count, take five timed batches, report the median.
pub mod harness {
    use std::time::{Duration, Instant};

    /// Result of one benchmark: median seconds per iteration.
    pub struct Measurement {
        /// Median wall-clock seconds per iteration.
        pub secs_per_iter: f64,
    }

    fn run_batch<R>(f: &mut impl FnMut() -> R, iters: u64) -> Duration {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        t.elapsed()
    }

    /// Times `f` and prints `label: <time>/iter`. Returns the measurement
    /// so callers can derive throughput.
    pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> Measurement {
        // Calibrate: grow the batch until it runs at least ~20 ms.
        let mut iters: u64 = 1;
        loop {
            let elapsed = run_batch(&mut f, iters);
            if elapsed >= Duration::from_millis(20) || iters >= 1 << 28 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let mut samples: Vec<f64> = (0..5)
            .map(|_| run_batch(&mut f, iters).as_secs_f64() / iters as f64)
            .collect();
        samples.sort_by(f64::total_cmp);
        let secs = samples[2];
        println!("{label:<40} {}", format_time(secs));
        Measurement {
            secs_per_iter: secs,
        }
    }

    /// Like [`bench`] but also prints element throughput, for benchmarks
    /// whose closure processes `elements` items per call.
    pub fn bench_throughput<R>(label: &str, elements: u64, f: impl FnMut() -> R) -> Measurement {
        let m = bench(label, f);
        let rate = elements as f64 / m.secs_per_iter;
        println!("{:<40} {:.2} Melem/s", "", rate / 1e6);
        m
    }

    fn format_time(secs: f64) -> String {
        if secs < 1e-6 {
            format!("{:.1} ns/iter", secs * 1e9)
        } else if secs < 1e-3 {
            format!("{:.2} µs/iter", secs * 1e6)
        } else if secs < 1.0 {
            format!("{:.2} ms/iter", secs * 1e3)
        } else {
            format!("{secs:.2} s/iter")
        }
    }
}

/// Shard-scaling measurement for the multi-core LFTA
/// ([`msa_gigascope::shard`]).
///
/// A single host core cannot demonstrate wall-clock speedup, so the
/// headline metric here is the **critical path**: partition the stream
/// with the deployment's own hash partitioner, time each shard's
/// executor serially on its own partition, and take the slowest shard
/// as the deployment's completion time. On a host with at least `N`
/// cores the threaded runtime approaches exactly this bound; the
/// emitted JSON records both the critical path and the measured
/// single-machine wall clock, plus the host's core count, so the
/// numbers stay honest on any machine.
pub mod sharding {
    use super::{CostParams, Executor, PhysicalPlan};
    use msa_gigascope::{shard_of, shard_seed, ShardedExecutor};
    use msa_stream::Record;
    use std::time::Instant;

    /// One measured deployment size.
    pub struct ShardRow {
        /// Shard count `N`.
        pub shards: usize,
        /// Completion time of the slowest shard, seconds.
        pub critical_path_secs: f64,
        /// Wall clock of the real threaded deployment, seconds.
        pub wall_clock_secs: f64,
        /// `records / critical_path_secs`.
        pub records_per_sec: f64,
    }

    /// Partitions `records` exactly as [`ShardedExecutor`] would and
    /// times each shard's executor serially, then times the threaded
    /// deployment end to end for the wall-clock column.
    pub fn measure(
        plan: &PhysicalPlan,
        records: &[Record],
        epoch_micros: u64,
        seed: u64,
        shards: usize,
    ) -> ShardRow {
        let mut parts: Vec<Vec<Record>> = vec![Vec::new(); shards];
        for r in records {
            parts[shard_of(seed, r, shards)].push(*r);
        }
        let shard_plan = plan.split_for_shards(shards);
        let mut critical = 0.0f64;
        for (k, part) in parts.iter().enumerate() {
            // Median of three fresh runs per shard, after one warm-up
            // pass, so page faults and cache state don't masquerade as
            // scaling.
            let time_once = || {
                let mut ex = Executor::new(
                    shard_plan.clone(),
                    CostParams::paper(),
                    epoch_micros,
                    shard_seed(seed, k, shards),
                );
                let t = Instant::now();
                ex.run(part);
                std::hint::black_box(ex.finish());
                t.elapsed().as_secs_f64()
            };
            std::hint::black_box(time_once());
            let mut samples = [time_once(), time_once(), time_once()];
            samples.sort_by(f64::total_cmp);
            critical = critical.max(samples[1]);
        }
        let wall = match ShardedExecutor::new(
            plan.clone(),
            CostParams::paper(),
            epoch_micros,
            seed,
            shards,
        ) {
            Ok(mut sx) => {
                let t = Instant::now();
                sx.run(records);
                std::hint::black_box(sx.finish());
                t.elapsed().as_secs_f64()
            }
            Err(_) => f64::NAN,
        };
        ShardRow {
            shards,
            critical_path_secs: critical,
            wall_clock_secs: wall,
            records_per_sec: records.len() as f64 / critical.max(f64::MIN_POSITIVE),
        }
    }
}

/// Formats a float with 4 significant decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_one() {
        // Tests run without MSA_SCALE set in CI; guard for local runs.
        if std::env::var("MSA_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
        }
    }

    #[test]
    fn m_sweep_has_five_points() {
        assert_eq!(m_sweep().len(), 5);
    }

    #[test]
    fn table_rendering_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["10".into(), "x".into()]],
        );
    }
}
