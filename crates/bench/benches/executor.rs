//! End-to-end executor throughput: records/second through a flat
//! configuration vs a phantom configuration — the system-level effect
//! the paper's cost model predicts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use msa_gigascope::{CostParams, Executor, PhysicalPlan, PlanNode};
use msa_stream::{AttrSet, UniformStreamBuilder};
use std::hint::black_box;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn bench_executor(c: &mut Criterion) {
    let stream = UniformStreamBuilder::new(4, 2837)
        .records(100_000)
        .seed(9)
        .build();

    let flat = PhysicalPlan::flat(&[
        (s("AB"), 2000),
        (s("BC"), 2000),
        (s("BD"), 2000),
        (s("CD"), 2000),
    ])
    .unwrap();

    let phantom = PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("ABCD"),
            parent: None,
            buckets: 6000,
            is_query: false,
        },
        PlanNode {
            attrs: s("AB"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
        PlanNode {
            attrs: s("BC"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
        PlanNode {
            attrs: s("BD"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
        PlanNode {
            attrs: s("CD"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
    ])
    .unwrap();

    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(20);
    for (label, plan) in [("flat_4_queries", flat), ("phantom_abcd", phantom)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut ex = Executor::new(plan.clone(), CostParams::paper(), u64::MAX, 3)
                    .discard_results();
                ex.run(black_box(&stream.records));
                black_box(ex.report().per_record_cost())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
