//! End-to-end executor throughput: records/second through a flat
//! configuration vs a phantom configuration — the system-level effect
//! the paper's cost model predicts.

use msa_bench::harness::bench_throughput;
use msa_gigascope::{CostParams, Executor, PhysicalPlan, PlanNode};
use msa_stream::{AttrSet, UniformStreamBuilder};
use std::hint::black_box;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn main() {
    let stream = UniformStreamBuilder::new(4, 2837)
        .records(100_000)
        .seed(9)
        .build();

    let flat = PhysicalPlan::flat([
        (s("AB"), 2000),
        (s("BC"), 2000),
        (s("BD"), 2000),
        (s("CD"), 2000),
    ]);

    let phantom = PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("ABCD"),
            parent: None,
            buckets: 6000,
            is_query: false,
        },
        PlanNode {
            attrs: s("AB"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
        PlanNode {
            attrs: s("BC"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
        PlanNode {
            attrs: s("BD"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
        PlanNode {
            attrs: s("CD"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
    ])
    .unwrap();

    println!("executor");
    for (label, plan) in [("flat_4_queries", flat), ("phantom_abcd", phantom)] {
        bench_throughput(label, stream.len() as u64, || {
            let mut ex =
                Executor::new(plan.clone(), CostParams::paper(), u64::MAX, 3).discard_results();
            ex.run(black_box(&stream.records));
            black_box(ex.report().per_record_cost())
        });
    }
}
