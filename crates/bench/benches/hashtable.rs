//! LFTA hash-table probe throughput — the `c1` operation whose cost the
//! whole paper is built around.

use msa_bench::harness::bench_throughput;
use msa_gigascope::table::AggState;
use msa_gigascope::LftaTable;
use msa_stream::{AttrSet, GroupKey};
use std::hint::black_box;

fn keys(n: usize, arity: usize) -> Vec<GroupKey> {
    (0..n)
        .map(|i| {
            let vals: Vec<u32> = (0..arity)
                .map(|a| (i as u32).wrapping_mul(2654435761).rotate_left(a as u32))
                .collect();
            GroupKey::from_values(&vals)
        })
        .collect()
}

fn main() {
    println!("lfta_probe");
    for (label, arity, buckets) in [
        ("1attr_low_collision", 1usize, 1 << 15),
        ("4attr_low_collision", 4, 1 << 15),
        ("4attr_high_collision", 4, 512),
    ] {
        let attrs = AttrSet::from_attrs(0..arity as u8);
        let keyset = keys(3000, arity);
        let mut table = LftaTable::new(attrs, buckets, 7);
        let mut i = 0usize;
        bench_throughput(label, 10_000, || {
            // Cycle through the key set; 10k probes per iteration batch
            // keeps the measurement above timer resolution.
            for _ in 0..10_000 {
                let k = keyset[i % keyset.len()];
                black_box(table.probe(black_box(k), AggState::unit()));
                i = i.wrapping_add(1);
            }
        });
    }
}
