//! Collision-model evaluation cost — §4.4's motivation for the
//! truncated sum and the precomputed `g/b` regression: the planner
//! evaluates the model thousands of times per plan.

use criterion::{criterion_group, criterion_main, Criterion};
use msa_collision::curve::PiecewiseCurve;
use msa_collision::models;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let (g, b) = (3000u64, 1000u64);
    let mut group = c.benchmark_group("collision_rate");

    group.bench_function("literal_sum_eq13", |bch| {
        bch.iter(|| black_box(models::precise_sum(black_box(g), black_box(b))))
    });
    group.bench_function("truncated_5sigma", |bch| {
        bch.iter(|| black_box(models::precise_truncated(black_box(g), black_box(b), 5.0)))
    });
    group.bench_function("closed_form", |bch| {
        bch.iter(|| black_box(models::precise(black_box(g), black_box(b))))
    });
    group.bench_function("asymptotic_gb_only", |bch| {
        bch.iter(|| black_box(models::asymptotic(black_box(3.0))))
    });
    let curve = PiecewiseCurve::fit_default();
    group.bench_function("piecewise_regression", |bch| {
        bch.iter(|| black_box(curve.eval(black_box(3.0))))
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
