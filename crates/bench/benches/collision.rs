//! Collision-model evaluation cost — §4.4's motivation for the
//! truncated sum and the precomputed `g/b` regression: the planner
//! evaluates the model thousands of times per plan.

use msa_bench::harness::bench;
use msa_collision::curve::PiecewiseCurve;
use msa_collision::models;
use std::hint::black_box;

fn main() {
    let (g, b) = (3000u64, 1000u64);
    println!("collision_rate");

    bench("literal_sum_eq13", || {
        black_box(models::precise_sum(black_box(g), black_box(b)))
    });
    bench("truncated_5sigma", || {
        black_box(models::precise_truncated(black_box(g), black_box(b), 5.0))
    });
    bench("closed_form", || {
        black_box(models::precise(black_box(g), black_box(b)))
    });
    bench("asymptotic_gb_only", || {
        black_box(models::asymptotic(black_box(3.0)))
    });
    let curve = PiecewiseCurve::fit_default();
    bench("piecewise_regression", || {
        black_box(curve.eval(black_box(3.0)))
    });
}
