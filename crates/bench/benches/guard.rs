//! Overload-guard and eviction-channel overhead on the hot path.
//!
//! The guard check and the channel hand-off sit on every record and
//! every eviction; this bench quantifies their tax relative to the bare
//! executor in three configurations: no guard (baseline), a guard that
//! never trips (the steady-state cost of being protected), and a lossy
//! channel with a tripping guard (the degraded regime).

use msa_bench::harness::bench_throughput;
use msa_gigascope::{CostParams, Executor, FaultPlan, GuardPolicy, PhysicalPlan, PlanNode};
use msa_stream::{AttrSet, UniformStreamBuilder};
use std::hint::black_box;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn plan() -> PhysicalPlan {
    PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: 2000,
            is_query: false,
        },
        PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
        PlanNode {
            attrs: s("B"),
            parent: Some(0),
            buckets: 500,
            is_query: true,
        },
    ])
    .unwrap()
}

fn main() {
    let stream = UniformStreamBuilder::new(4, 2837)
        .records(100_000)
        .duration_secs(10.0)
        .seed(9)
        .build();
    let epoch = 1_000_000;

    println!("guard");
    bench_throughput("unguarded_baseline", stream.len() as u64, || {
        let mut ex = Executor::new(plan(), CostParams::paper(), epoch, 3).discard_results();
        ex.run(black_box(&stream.records));
        black_box(ex.report().records)
    });
    bench_throughput("guard_never_trips", stream.len() as u64, || {
        let mut ex = Executor::new(plan(), CostParams::paper(), epoch, 3)
            .discard_results()
            .with_guard(GuardPolicy::new(f64::INFINITY));
        ex.run(black_box(&stream.records));
        black_box(ex.report().records)
    });
    bench_throughput("guard_tripping_lossy_channel", stream.len() as u64, || {
        let mut ex = Executor::new(plan(), CostParams::paper(), epoch, 3)
            .discard_results()
            .with_guard(GuardPolicy::new(0.0))
            .with_faults(
                &FaultPlan::new(7)
                    .with_eviction_loss(0.05)
                    .with_eviction_duplication(0.05),
            );
        ex.run(black_box(&stream.records));
        black_box(ex.report().records_shed)
    });
}
