//! Planning-time benchmarks (§6.3.4: "the running time of GCSL in all
//! configurations we tried was sub-millisecond").

use msa_bench::harness::bench;
use msa_collision::LinearModel;
use msa_optimizer::cost::{ClusterHandling, CostContext};
use msa_optimizer::{greedy_collision, greedy_space, AllocStrategy, Configuration, FeedingGraph};
use msa_stream::{AttrSet, DatasetStats};
use std::hint::black_box;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn stats() -> DatasetStats {
    DatasetStats::from_group_counts(
        [
            (s("A"), 552),
            (s("B"), 400),
            (s("C"), 600),
            (s("D"), 120),
            (s("AB"), 1846),
            (s("AC"), 1700),
            (s("AD"), 1500),
            (s("BC"), 1500),
            (s("BD"), 900),
            (s("CD"), 800),
            (s("ABC"), 2117),
            (s("ABD"), 2000),
            (s("ACD"), 1900),
            (s("BCD"), 1800),
            (s("ABCD"), 2837),
        ],
        860_000,
    )
}

fn main() {
    let stats = stats();
    let model = LinearModel::paper_no_intercept();
    let mut ctx = CostContext::new(&stats, &model);
    ctx.clustering = ClusterHandling::None;
    let q1: Vec<AttrSet> = ["A", "B", "C", "D"].iter().map(|q| s(q)).collect();
    let q2: Vec<AttrSet> = ["AB", "BC", "BD", "CD"].iter().map(|q| s(q)).collect();
    let g1 = FeedingGraph::new(&q1);
    let g2 = FeedingGraph::new(&q2);

    // The paper's headline planning measurement.
    bench("gcsl_single_attr_queries_m40k", || {
        black_box(greedy_collision(
            black_box(&g1),
            40_000.0,
            &ctx,
            AllocStrategy::SupernodeLinear,
        ))
    });
    bench("gcsl_pair_queries_m40k", || {
        black_box(greedy_collision(
            black_box(&g2),
            40_000.0,
            &ctx,
            AllocStrategy::SupernodeLinear,
        ))
    });
    bench("gs_phi1_single_attr_queries_m40k", || {
        black_box(greedy_space(black_box(&g1), 40_000.0, 1.0, &ctx))
    });

    let queries: Vec<AttrSet> = ["AB", "BC", "BD", "CD"].iter().map(|q| s(q)).collect();
    let cfg = Configuration::with_phantoms(&queries, &[s("ABCD"), s("BCD")]);

    println!("alloc_strategies");
    for strat in AllocStrategy::HEURISTICS {
        bench(strat.name(), || {
            black_box(strat.allocate(black_box(&cfg), 40_000.0, &ctx))
        });
    }
    bench("ES_numeric_100_iters", || {
        black_box(msa_optimizer::alloc::allocate_numeric(
            black_box(&cfg),
            40_000.0,
            &ctx,
            100,
        ))
    });
}
