//! Umbrella crate re-exporting the public API of the `multi-agg` workspace.
//!
//! See [`msa_core`] for the high-level entry point and the individual
//! crates for substrates:
//!
//! * [`msa_stream`] — records, attribute sets, workload generators, stats.
//! * [`msa_collision`] — collision-rate models (Section 4 of the paper).
//! * [`msa_gigascope`] — two-level LFTA/HFTA execution substrate.
//! * [`msa_optimizer`] — feeding graph, cost model, space allocation and
//!   phantom-choice algorithms (Sections 3 & 5).

#![deny(unsafe_code)]

pub use msa_collision as collision;
pub use msa_core as core;
pub use msa_gigascope as gigascope;
pub use msa_optimizer as optimizer;
pub use msa_stream as stream;
