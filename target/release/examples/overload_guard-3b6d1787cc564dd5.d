/root/repo/target/release/examples/overload_guard-3b6d1787cc564dd5.d: examples/overload_guard.rs

/root/repo/target/release/examples/overload_guard-3b6d1787cc564dd5: examples/overload_guard.rs

examples/overload_guard.rs:
