/root/repo/target/release/examples/dos_detection-af96da34cbef3b10.d: examples/dos_detection.rs

/root/repo/target/release/examples/dos_detection-af96da34cbef3b10: examples/dos_detection.rs

examples/dos_detection.rs:
