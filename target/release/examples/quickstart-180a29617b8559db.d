/root/repo/target/release/examples/quickstart-180a29617b8559db.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-180a29617b8559db: examples/quickstart.rs

examples/quickstart.rs:
