/root/repo/target/release/examples/_verify_probe-dc7f074365db5c4b.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-dc7f074365db5c4b: examples/_verify_probe.rs

examples/_verify_probe.rs:
