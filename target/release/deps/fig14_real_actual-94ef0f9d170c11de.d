/root/repo/target/release/deps/fig14_real_actual-94ef0f9d170c11de.d: crates/bench/src/bin/fig14_real_actual.rs

/root/repo/target/release/deps/fig14_real_actual-94ef0f9d170c11de: crates/bench/src/bin/fig14_real_actual.rs

crates/bench/src/bin/fig14_real_actual.rs:
