/root/repo/target/release/deps/fig08_linear_fit-87f5db26f32841f5.d: crates/bench/src/bin/fig08_linear_fit.rs

/root/repo/target/release/deps/fig08_linear_fit-87f5db26f32841f5: crates/bench/src/bin/fig08_linear_fit.rs

crates/bench/src/bin/fig08_linear_fit.rs:
