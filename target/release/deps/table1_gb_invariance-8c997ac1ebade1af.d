/root/repo/target/release/deps/table1_gb_invariance-8c997ac1ebade1af.d: crates/bench/src/bin/table1_gb_invariance.rs

/root/repo/target/release/deps/table1_gb_invariance-8c997ac1ebade1af: crates/bench/src/bin/table1_gb_invariance.rs

crates/bench/src/bin/table1_gb_invariance.rs:
