/root/repo/target/release/deps/table3_sl_stats-da36b58a04f0857a.d: crates/bench/src/bin/table3_sl_stats.rs

/root/repo/target/release/deps/table3_sl_stats-da36b58a04f0857a: crates/bench/src/bin/table3_sl_stats.rs

crates/bench/src/bin/table3_sl_stats.rs:
