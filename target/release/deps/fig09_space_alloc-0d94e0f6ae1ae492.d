/root/repo/target/release/deps/fig09_space_alloc-0d94e0f6ae1ae492.d: crates/bench/src/bin/fig09_space_alloc.rs

/root/repo/target/release/deps/fig09_space_alloc-0d94e0f6ae1ae492: crates/bench/src/bin/fig09_space_alloc.rs

crates/bench/src/bin/fig09_space_alloc.rs:
