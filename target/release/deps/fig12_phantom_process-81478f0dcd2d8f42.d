/root/repo/target/release/deps/fig12_phantom_process-81478f0dcd2d8f42.d: crates/bench/src/bin/fig12_phantom_process.rs

/root/repo/target/release/deps/fig12_phantom_process-81478f0dcd2d8f42: crates/bench/src/bin/fig12_phantom_process.rs

crates/bench/src/bin/fig12_phantom_process.rs:
