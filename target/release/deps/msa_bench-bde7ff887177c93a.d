/root/repo/target/release/deps/msa_bench-bde7ff887177c93a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsa_bench-bde7ff887177c93a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmsa_bench-bde7ff887177c93a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
