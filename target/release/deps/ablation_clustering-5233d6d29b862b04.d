/root/repo/target/release/deps/ablation_clustering-5233d6d29b862b04.d: crates/bench/src/bin/ablation_clustering.rs

/root/repo/target/release/deps/ablation_clustering-5233d6d29b862b04: crates/bench/src/bin/ablation_clustering.rs

crates/bench/src/bin/ablation_clustering.rs:
