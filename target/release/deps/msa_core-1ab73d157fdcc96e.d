/root/repo/target/release/deps/msa_core-1ab73d157fdcc96e.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

/root/repo/target/release/deps/libmsa_core-1ab73d157fdcc96e.rlib: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

/root/repo/target/release/deps/libmsa_core-1ab73d157fdcc96e.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/sql.rs:
