/root/repo/target/release/deps/fig15_peak_load-68cc1795b7fb9988.d: crates/bench/src/bin/fig15_peak_load.rs

/root/repo/target/release/deps/fig15_peak_load-68cc1795b7fb9988: crates/bench/src/bin/fig15_peak_load.rs

crates/bench/src/bin/fig15_peak_load.rs:
