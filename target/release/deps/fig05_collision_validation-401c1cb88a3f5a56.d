/root/repo/target/release/deps/fig05_collision_validation-401c1cb88a3f5a56.d: crates/bench/src/bin/fig05_collision_validation.rs

/root/repo/target/release/deps/fig05_collision_validation-401c1cb88a3f5a56: crates/bench/src/bin/fig05_collision_validation.rs

crates/bench/src/bin/fig05_collision_validation.rs:
