/root/repo/target/release/deps/fig07_collision_curve-250ba7a78d3396f1.d: crates/bench/src/bin/fig07_collision_curve.rs

/root/repo/target/release/deps/fig07_collision_curve-250ba7a78d3396f1: crates/bench/src/bin/fig07_collision_curve.rs

crates/bench/src/bin/fig07_collision_curve.rs:
