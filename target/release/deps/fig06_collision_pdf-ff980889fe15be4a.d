/root/repo/target/release/deps/fig06_collision_pdf-ff980889fe15be4a.d: crates/bench/src/bin/fig06_collision_pdf.rs

/root/repo/target/release/deps/fig06_collision_pdf-ff980889fe15be4a: crates/bench/src/bin/fig06_collision_pdf.rs

crates/bench/src/bin/fig06_collision_pdf.rs:
