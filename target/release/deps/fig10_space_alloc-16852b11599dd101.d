/root/repo/target/release/deps/fig10_space_alloc-16852b11599dd101.d: crates/bench/src/bin/fig10_space_alloc.rs

/root/repo/target/release/deps/fig10_space_alloc-16852b11599dd101: crates/bench/src/bin/fig10_space_alloc.rs

crates/bench/src/bin/fig10_space_alloc.rs:
