/root/repo/target/release/deps/msa_collision-202efc560a20fbc2.d: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

/root/repo/target/release/deps/libmsa_collision-202efc560a20fbc2.rlib: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

/root/repo/target/release/deps/libmsa_collision-202efc560a20fbc2.rmeta: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

crates/collision/src/lib.rs:
crates/collision/src/curve.rs:
crates/collision/src/models.rs:
crates/collision/src/occupancy.rs:
