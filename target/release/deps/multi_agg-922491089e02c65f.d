/root/repo/target/release/deps/multi_agg-922491089e02c65f.d: src/lib.rs

/root/repo/target/release/deps/libmulti_agg-922491089e02c65f.rlib: src/lib.rs

/root/repo/target/release/deps/libmulti_agg-922491089e02c65f.rmeta: src/lib.rs

src/lib.rs:
