/root/repo/target/release/deps/msa_optimizer-3e50c80c318924c4.d: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs

/root/repo/target/release/deps/libmsa_optimizer-3e50c80c318924c4.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs

/root/repo/target/release/deps/libmsa_optimizer-3e50c80c318924c4.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/alloc.rs:
crates/optimizer/src/config.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/graph.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/peakload.rs:
crates/optimizer/src/planner.rs:
