/root/repo/target/release/deps/table2_alloc_error-f956edb3b11839fa.d: crates/bench/src/bin/table2_alloc_error.rs

/root/repo/target/release/deps/table2_alloc_error-f956edb3b11839fa: crates/bench/src/bin/table2_alloc_error.rs

crates/bench/src/bin/table2_alloc_error.rs:
