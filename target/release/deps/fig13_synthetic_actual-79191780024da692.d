/root/repo/target/release/deps/fig13_synthetic_actual-79191780024da692.d: crates/bench/src/bin/fig13_synthetic_actual.rs

/root/repo/target/release/deps/fig13_synthetic_actual-79191780024da692: crates/bench/src/bin/fig13_synthetic_actual.rs

crates/bench/src/bin/fig13_synthetic_actual.rs:
