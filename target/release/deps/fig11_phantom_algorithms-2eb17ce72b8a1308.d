/root/repo/target/release/deps/fig11_phantom_algorithms-2eb17ce72b8a1308.d: crates/bench/src/bin/fig11_phantom_algorithms.rs

/root/repo/target/release/deps/fig11_phantom_algorithms-2eb17ce72b8a1308: crates/bench/src/bin/fig11_phantom_algorithms.rs

crates/bench/src/bin/fig11_phantom_algorithms.rs:
