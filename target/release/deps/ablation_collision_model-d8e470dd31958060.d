/root/repo/target/release/deps/ablation_collision_model-d8e470dd31958060.d: crates/bench/src/bin/ablation_collision_model.rs

/root/repo/target/release/deps/ablation_collision_model-d8e470dd31958060: crates/bench/src/bin/ablation_collision_model.rs

crates/bench/src/bin/ablation_collision_model.rs:
