/root/repo/target/release/deps/ablation_zipf-37e21ae86c788712.d: crates/bench/src/bin/ablation_zipf.rs

/root/repo/target/release/deps/ablation_zipf-37e21ae86c788712: crates/bench/src/bin/ablation_zipf.rs

crates/bench/src/bin/ablation_zipf.rs:
