/root/repo/target/release/deps/msa_gigascope-8baa570d7048027f.d: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs

/root/repo/target/release/deps/libmsa_gigascope-8baa570d7048027f.rlib: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs

/root/repo/target/release/deps/libmsa_gigascope-8baa570d7048027f.rmeta: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs

crates/gigascope/src/lib.rs:
crates/gigascope/src/channel.rs:
crates/gigascope/src/executor.rs:
crates/gigascope/src/faults.rs:
crates/gigascope/src/guard.rs:
crates/gigascope/src/hfta.rs:
crates/gigascope/src/plan.rs:
crates/gigascope/src/table.rs:
