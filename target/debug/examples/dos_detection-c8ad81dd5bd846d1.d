/root/repo/target/debug/examples/dos_detection-c8ad81dd5bd846d1.d: examples/dos_detection.rs

/root/repo/target/debug/examples/libdos_detection-c8ad81dd5bd846d1.rmeta: examples/dos_detection.rs

examples/dos_detection.rs:
