/root/repo/target/debug/examples/_dbg_guard-a8246d31bce1d319.d: examples/_dbg_guard.rs

/root/repo/target/debug/examples/_dbg_guard-a8246d31bce1d319: examples/_dbg_guard.rs

examples/_dbg_guard.rs:
