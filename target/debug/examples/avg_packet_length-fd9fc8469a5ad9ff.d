/root/repo/target/debug/examples/avg_packet_length-fd9fc8469a5ad9ff.d: examples/avg_packet_length.rs

/root/repo/target/debug/examples/libavg_packet_length-fd9fc8469a5ad9ff.rmeta: examples/avg_packet_length.rs

examples/avg_packet_length.rs:
