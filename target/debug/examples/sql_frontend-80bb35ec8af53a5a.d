/root/repo/target/debug/examples/sql_frontend-80bb35ec8af53a5a.d: examples/sql_frontend.rs

/root/repo/target/debug/examples/libsql_frontend-80bb35ec8af53a5a.rmeta: examples/sql_frontend.rs

examples/sql_frontend.rs:
