/root/repo/target/debug/examples/overload_guard-ae941d4640611360.d: examples/overload_guard.rs

/root/repo/target/debug/examples/overload_guard-ae941d4640611360: examples/overload_guard.rs

examples/overload_guard.rs:
