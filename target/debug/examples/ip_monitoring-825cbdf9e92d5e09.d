/root/repo/target/debug/examples/ip_monitoring-825cbdf9e92d5e09.d: examples/ip_monitoring.rs

/root/repo/target/debug/examples/ip_monitoring-825cbdf9e92d5e09: examples/ip_monitoring.rs

examples/ip_monitoring.rs:
