/root/repo/target/debug/examples/sql_frontend-9df66577e109c633.d: examples/sql_frontend.rs Cargo.toml

/root/repo/target/debug/examples/libsql_frontend-9df66577e109c633.rmeta: examples/sql_frontend.rs Cargo.toml

examples/sql_frontend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
