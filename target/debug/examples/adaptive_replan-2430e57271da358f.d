/root/repo/target/debug/examples/adaptive_replan-2430e57271da358f.d: examples/adaptive_replan.rs Cargo.toml

/root/repo/target/debug/examples/libadaptive_replan-2430e57271da358f.rmeta: examples/adaptive_replan.rs Cargo.toml

examples/adaptive_replan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
