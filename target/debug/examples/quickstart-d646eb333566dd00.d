/root/repo/target/debug/examples/quickstart-d646eb333566dd00.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-d646eb333566dd00.rmeta: examples/quickstart.rs

examples/quickstart.rs:
