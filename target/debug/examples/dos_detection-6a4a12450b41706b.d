/root/repo/target/debug/examples/dos_detection-6a4a12450b41706b.d: examples/dos_detection.rs Cargo.toml

/root/repo/target/debug/examples/libdos_detection-6a4a12450b41706b.rmeta: examples/dos_detection.rs Cargo.toml

examples/dos_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
