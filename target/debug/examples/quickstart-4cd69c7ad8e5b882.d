/root/repo/target/debug/examples/quickstart-4cd69c7ad8e5b882.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4cd69c7ad8e5b882: examples/quickstart.rs

examples/quickstart.rs:
