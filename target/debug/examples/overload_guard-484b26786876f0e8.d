/root/repo/target/debug/examples/overload_guard-484b26786876f0e8.d: examples/overload_guard.rs

/root/repo/target/debug/examples/liboverload_guard-484b26786876f0e8.rmeta: examples/overload_guard.rs

examples/overload_guard.rs:
