/root/repo/target/debug/examples/sql_frontend-d8b9bdc9b6bcd281.d: examples/sql_frontend.rs

/root/repo/target/debug/examples/sql_frontend-d8b9bdc9b6bcd281: examples/sql_frontend.rs

examples/sql_frontend.rs:
