/root/repo/target/debug/examples/cube_explorer-1b79156a7b1d59ab.d: examples/cube_explorer.rs

/root/repo/target/debug/examples/libcube_explorer-1b79156a7b1d59ab.rmeta: examples/cube_explorer.rs

examples/cube_explorer.rs:
