/root/repo/target/debug/examples/ip_monitoring-3da77c440c7f9681.d: examples/ip_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libip_monitoring-3da77c440c7f9681.rmeta: examples/ip_monitoring.rs Cargo.toml

examples/ip_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
