/root/repo/target/debug/examples/dos_detection-9d4bc4aeef21df82.d: examples/dos_detection.rs

/root/repo/target/debug/examples/dos_detection-9d4bc4aeef21df82: examples/dos_detection.rs

examples/dos_detection.rs:
