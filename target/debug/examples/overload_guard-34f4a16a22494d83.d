/root/repo/target/debug/examples/overload_guard-34f4a16a22494d83.d: examples/overload_guard.rs Cargo.toml

/root/repo/target/debug/examples/liboverload_guard-34f4a16a22494d83.rmeta: examples/overload_guard.rs Cargo.toml

examples/overload_guard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
