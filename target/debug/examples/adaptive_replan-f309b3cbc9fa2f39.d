/root/repo/target/debug/examples/adaptive_replan-f309b3cbc9fa2f39.d: examples/adaptive_replan.rs

/root/repo/target/debug/examples/adaptive_replan-f309b3cbc9fa2f39: examples/adaptive_replan.rs

examples/adaptive_replan.rs:
