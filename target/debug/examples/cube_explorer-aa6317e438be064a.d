/root/repo/target/debug/examples/cube_explorer-aa6317e438be064a.d: examples/cube_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libcube_explorer-aa6317e438be064a.rmeta: examples/cube_explorer.rs Cargo.toml

examples/cube_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
