/root/repo/target/debug/examples/avg_packet_length-45a932f34433cd3d.d: examples/avg_packet_length.rs Cargo.toml

/root/repo/target/debug/examples/libavg_packet_length-45a932f34433cd3d.rmeta: examples/avg_packet_length.rs Cargo.toml

examples/avg_packet_length.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
