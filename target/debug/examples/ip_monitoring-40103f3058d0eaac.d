/root/repo/target/debug/examples/ip_monitoring-40103f3058d0eaac.d: examples/ip_monitoring.rs

/root/repo/target/debug/examples/libip_monitoring-40103f3058d0eaac.rmeta: examples/ip_monitoring.rs

examples/ip_monitoring.rs:
