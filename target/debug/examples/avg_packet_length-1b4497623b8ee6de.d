/root/repo/target/debug/examples/avg_packet_length-1b4497623b8ee6de.d: examples/avg_packet_length.rs

/root/repo/target/debug/examples/avg_packet_length-1b4497623b8ee6de: examples/avg_packet_length.rs

examples/avg_packet_length.rs:
