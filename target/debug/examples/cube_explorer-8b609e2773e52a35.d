/root/repo/target/debug/examples/cube_explorer-8b609e2773e52a35.d: examples/cube_explorer.rs

/root/repo/target/debug/examples/cube_explorer-8b609e2773e52a35: examples/cube_explorer.rs

examples/cube_explorer.rs:
