/root/repo/target/debug/examples/adaptive_replan-450b0ef81c59a567.d: examples/adaptive_replan.rs

/root/repo/target/debug/examples/libadaptive_replan-450b0ef81c59a567.rmeta: examples/adaptive_replan.rs

examples/adaptive_replan.rs:
