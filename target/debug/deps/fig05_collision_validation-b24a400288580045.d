/root/repo/target/debug/deps/fig05_collision_validation-b24a400288580045.d: crates/bench/src/bin/fig05_collision_validation.rs

/root/repo/target/debug/deps/libfig05_collision_validation-b24a400288580045.rmeta: crates/bench/src/bin/fig05_collision_validation.rs

crates/bench/src/bin/fig05_collision_validation.rs:
