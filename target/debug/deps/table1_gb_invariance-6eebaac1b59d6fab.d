/root/repo/target/debug/deps/table1_gb_invariance-6eebaac1b59d6fab.d: crates/bench/src/bin/table1_gb_invariance.rs

/root/repo/target/debug/deps/libtable1_gb_invariance-6eebaac1b59d6fab.rmeta: crates/bench/src/bin/table1_gb_invariance.rs

crates/bench/src/bin/table1_gb_invariance.rs:
