/root/repo/target/debug/deps/fig14_real_actual-e6ec4af9a3d58691.d: crates/bench/src/bin/fig14_real_actual.rs

/root/repo/target/debug/deps/fig14_real_actual-e6ec4af9a3d58691: crates/bench/src/bin/fig14_real_actual.rs

crates/bench/src/bin/fig14_real_actual.rs:
