/root/repo/target/debug/deps/table1_gb_invariance-dc50fe302d6f7999.d: crates/bench/src/bin/table1_gb_invariance.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_gb_invariance-dc50fe302d6f7999.rmeta: crates/bench/src/bin/table1_gb_invariance.rs Cargo.toml

crates/bench/src/bin/table1_gb_invariance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
