/root/repo/target/debug/deps/optimizer_scenarios-88dac60b0d6a44c2.d: tests/optimizer_scenarios.rs

/root/repo/target/debug/deps/liboptimizer_scenarios-88dac60b0d6a44c2.rmeta: tests/optimizer_scenarios.rs

tests/optimizer_scenarios.rs:
