/root/repo/target/debug/deps/fig07_collision_curve-5fc0a686d4996f38.d: crates/bench/src/bin/fig07_collision_curve.rs

/root/repo/target/debug/deps/libfig07_collision_curve-5fc0a686d4996f38.rmeta: crates/bench/src/bin/fig07_collision_curve.rs

crates/bench/src/bin/fig07_collision_curve.rs:
