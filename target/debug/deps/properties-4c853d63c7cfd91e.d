/root/repo/target/debug/deps/properties-4c853d63c7cfd91e.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-4c853d63c7cfd91e.rmeta: tests/properties.rs

tests/properties.rs:
