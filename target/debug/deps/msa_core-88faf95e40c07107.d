/root/repo/target/debug/deps/msa_core-88faf95e40c07107.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs Cargo.toml

/root/repo/target/debug/deps/libmsa_core-88faf95e40c07107.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/sql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
