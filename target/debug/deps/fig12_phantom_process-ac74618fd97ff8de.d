/root/repo/target/debug/deps/fig12_phantom_process-ac74618fd97ff8de.d: crates/bench/src/bin/fig12_phantom_process.rs

/root/repo/target/debug/deps/libfig12_phantom_process-ac74618fd97ff8de.rmeta: crates/bench/src/bin/fig12_phantom_process.rs

crates/bench/src/bin/fig12_phantom_process.rs:
