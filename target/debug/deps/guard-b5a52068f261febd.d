/root/repo/target/debug/deps/guard-b5a52068f261febd.d: crates/bench/benches/guard.rs Cargo.toml

/root/repo/target/debug/deps/libguard-b5a52068f261febd.rmeta: crates/bench/benches/guard.rs Cargo.toml

crates/bench/benches/guard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
