/root/repo/target/debug/deps/hashtable-f90958f5e3dfdcd3.d: crates/bench/benches/hashtable.rs Cargo.toml

/root/repo/target/debug/deps/libhashtable-f90958f5e3dfdcd3.rmeta: crates/bench/benches/hashtable.rs Cargo.toml

crates/bench/benches/hashtable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
