/root/repo/target/debug/deps/fig09_space_alloc-059a6da34a7e294d.d: crates/bench/src/bin/fig09_space_alloc.rs

/root/repo/target/debug/deps/libfig09_space_alloc-059a6da34a7e294d.rmeta: crates/bench/src/bin/fig09_space_alloc.rs

crates/bench/src/bin/fig09_space_alloc.rs:
