/root/repo/target/debug/deps/table3_sl_stats-7b469076951bb8a4.d: crates/bench/src/bin/table3_sl_stats.rs

/root/repo/target/debug/deps/table3_sl_stats-7b469076951bb8a4: crates/bench/src/bin/table3_sl_stats.rs

crates/bench/src/bin/table3_sl_stats.rs:
