/root/repo/target/debug/deps/hashtable-90d944188bc837cc.d: crates/bench/benches/hashtable.rs

/root/repo/target/debug/deps/libhashtable-90d944188bc837cc.rmeta: crates/bench/benches/hashtable.rs

crates/bench/benches/hashtable.rs:
