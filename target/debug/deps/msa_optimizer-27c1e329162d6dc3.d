/root/repo/target/debug/deps/msa_optimizer-27c1e329162d6dc3.d: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs

/root/repo/target/debug/deps/msa_optimizer-27c1e329162d6dc3: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/alloc.rs:
crates/optimizer/src/config.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/graph.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/peakload.rs:
crates/optimizer/src/planner.rs:
