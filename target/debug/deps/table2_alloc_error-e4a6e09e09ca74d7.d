/root/repo/target/debug/deps/table2_alloc_error-e4a6e09e09ca74d7.d: crates/bench/src/bin/table2_alloc_error.rs

/root/repo/target/debug/deps/libtable2_alloc_error-e4a6e09e09ca74d7.rmeta: crates/bench/src/bin/table2_alloc_error.rs

crates/bench/src/bin/table2_alloc_error.rs:
