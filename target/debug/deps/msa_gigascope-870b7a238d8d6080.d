/root/repo/target/debug/deps/msa_gigascope-870b7a238d8d6080.d: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs

/root/repo/target/debug/deps/msa_gigascope-870b7a238d8d6080: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs

crates/gigascope/src/lib.rs:
crates/gigascope/src/channel.rs:
crates/gigascope/src/executor.rs:
crates/gigascope/src/faults.rs:
crates/gigascope/src/guard.rs:
crates/gigascope/src/hfta.rs:
crates/gigascope/src/plan.rs:
crates/gigascope/src/table.rs:
