/root/repo/target/debug/deps/fig10_space_alloc-d943f2720b4886fe.d: crates/bench/src/bin/fig10_space_alloc.rs

/root/repo/target/debug/deps/fig10_space_alloc-d943f2720b4886fe: crates/bench/src/bin/fig10_space_alloc.rs

crates/bench/src/bin/fig10_space_alloc.rs:
