/root/repo/target/debug/deps/fig13_synthetic_actual-14476a4b810ed7d9.d: crates/bench/src/bin/fig13_synthetic_actual.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_synthetic_actual-14476a4b810ed7d9.rmeta: crates/bench/src/bin/fig13_synthetic_actual.rs Cargo.toml

crates/bench/src/bin/fig13_synthetic_actual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
