/root/repo/target/debug/deps/fig12_phantom_process-c91e4abc044e2954.d: crates/bench/src/bin/fig12_phantom_process.rs

/root/repo/target/debug/deps/fig12_phantom_process-c91e4abc044e2954: crates/bench/src/bin/fig12_phantom_process.rs

crates/bench/src/bin/fig12_phantom_process.rs:
