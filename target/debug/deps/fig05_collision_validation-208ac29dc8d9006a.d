/root/repo/target/debug/deps/fig05_collision_validation-208ac29dc8d9006a.d: crates/bench/src/bin/fig05_collision_validation.rs

/root/repo/target/debug/deps/libfig05_collision_validation-208ac29dc8d9006a.rmeta: crates/bench/src/bin/fig05_collision_validation.rs

crates/bench/src/bin/fig05_collision_validation.rs:
