/root/repo/target/debug/deps/guard-78a3b0acc80952c9.d: crates/bench/benches/guard.rs

/root/repo/target/debug/deps/libguard-78a3b0acc80952c9.rmeta: crates/bench/benches/guard.rs

crates/bench/benches/guard.rs:
