/root/repo/target/debug/deps/fig08_linear_fit-bf374a5e60206b3c.d: crates/bench/src/bin/fig08_linear_fit.rs

/root/repo/target/debug/deps/libfig08_linear_fit-bf374a5e60206b3c.rmeta: crates/bench/src/bin/fig08_linear_fit.rs

crates/bench/src/bin/fig08_linear_fit.rs:
