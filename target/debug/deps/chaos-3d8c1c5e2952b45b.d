/root/repo/target/debug/deps/chaos-3d8c1c5e2952b45b.d: tests/chaos.rs

/root/repo/target/debug/deps/libchaos-3d8c1c5e2952b45b.rmeta: tests/chaos.rs

tests/chaos.rs:
