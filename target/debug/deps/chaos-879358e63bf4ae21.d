/root/repo/target/debug/deps/chaos-879358e63bf4ae21.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-879358e63bf4ae21: tests/chaos.rs

tests/chaos.rs:
