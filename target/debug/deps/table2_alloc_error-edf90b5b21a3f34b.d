/root/repo/target/debug/deps/table2_alloc_error-edf90b5b21a3f34b.d: crates/bench/src/bin/table2_alloc_error.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_alloc_error-edf90b5b21a3f34b.rmeta: crates/bench/src/bin/table2_alloc_error.rs Cargo.toml

crates/bench/src/bin/table2_alloc_error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
