/root/repo/target/debug/deps/fig11_phantom_algorithms-402ac577249bb358.d: crates/bench/src/bin/fig11_phantom_algorithms.rs

/root/repo/target/debug/deps/libfig11_phantom_algorithms-402ac577249bb358.rmeta: crates/bench/src/bin/fig11_phantom_algorithms.rs

crates/bench/src/bin/fig11_phantom_algorithms.rs:
