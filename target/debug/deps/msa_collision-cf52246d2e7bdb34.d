/root/repo/target/debug/deps/msa_collision-cf52246d2e7bdb34.d: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

/root/repo/target/debug/deps/libmsa_collision-cf52246d2e7bdb34.rlib: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

/root/repo/target/debug/deps/libmsa_collision-cf52246d2e7bdb34.rmeta: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

crates/collision/src/lib.rs:
crates/collision/src/curve.rs:
crates/collision/src/models.rs:
crates/collision/src/occupancy.rs:
