/root/repo/target/debug/deps/planner-05ee78f8f96d686c.d: crates/bench/benches/planner.rs

/root/repo/target/debug/deps/libplanner-05ee78f8f96d686c.rmeta: crates/bench/benches/planner.rs

crates/bench/benches/planner.rs:
