/root/repo/target/debug/deps/fig06_collision_pdf-e155c7c8c7df4bbb.d: crates/bench/src/bin/fig06_collision_pdf.rs

/root/repo/target/debug/deps/fig06_collision_pdf-e155c7c8c7df4bbb: crates/bench/src/bin/fig06_collision_pdf.rs

crates/bench/src/bin/fig06_collision_pdf.rs:
