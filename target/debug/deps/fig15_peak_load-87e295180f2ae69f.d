/root/repo/target/debug/deps/fig15_peak_load-87e295180f2ae69f.d: crates/bench/src/bin/fig15_peak_load.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_peak_load-87e295180f2ae69f.rmeta: crates/bench/src/bin/fig15_peak_load.rs Cargo.toml

crates/bench/src/bin/fig15_peak_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
