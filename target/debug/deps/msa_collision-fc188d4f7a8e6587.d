/root/repo/target/debug/deps/msa_collision-fc188d4f7a8e6587.d: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs Cargo.toml

/root/repo/target/debug/deps/libmsa_collision-fc188d4f7a8e6587.rmeta: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs Cargo.toml

crates/collision/src/lib.rs:
crates/collision/src/curve.rs:
crates/collision/src/models.rs:
crates/collision/src/occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
