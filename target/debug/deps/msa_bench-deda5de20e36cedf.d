/root/repo/target/debug/deps/msa_bench-deda5de20e36cedf.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsa_bench-deda5de20e36cedf.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
