/root/repo/target/debug/deps/fig11_phantom_algorithms-00dbeac3faf5372e.d: crates/bench/src/bin/fig11_phantom_algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_phantom_algorithms-00dbeac3faf5372e.rmeta: crates/bench/src/bin/fig11_phantom_algorithms.rs Cargo.toml

crates/bench/src/bin/fig11_phantom_algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
