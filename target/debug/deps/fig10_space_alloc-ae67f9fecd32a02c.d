/root/repo/target/debug/deps/fig10_space_alloc-ae67f9fecd32a02c.d: crates/bench/src/bin/fig10_space_alloc.rs

/root/repo/target/debug/deps/libfig10_space_alloc-ae67f9fecd32a02c.rmeta: crates/bench/src/bin/fig10_space_alloc.rs

crates/bench/src/bin/fig10_space_alloc.rs:
