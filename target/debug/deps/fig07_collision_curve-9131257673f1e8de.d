/root/repo/target/debug/deps/fig07_collision_curve-9131257673f1e8de.d: crates/bench/src/bin/fig07_collision_curve.rs Cargo.toml

/root/repo/target/debug/deps/libfig07_collision_curve-9131257673f1e8de.rmeta: crates/bench/src/bin/fig07_collision_curve.rs Cargo.toml

crates/bench/src/bin/fig07_collision_curve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
