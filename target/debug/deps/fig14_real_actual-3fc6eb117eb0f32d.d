/root/repo/target/debug/deps/fig14_real_actual-3fc6eb117eb0f32d.d: crates/bench/src/bin/fig14_real_actual.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_real_actual-3fc6eb117eb0f32d.rmeta: crates/bench/src/bin/fig14_real_actual.rs Cargo.toml

crates/bench/src/bin/fig14_real_actual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
