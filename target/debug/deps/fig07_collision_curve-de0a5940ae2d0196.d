/root/repo/target/debug/deps/fig07_collision_curve-de0a5940ae2d0196.d: crates/bench/src/bin/fig07_collision_curve.rs

/root/repo/target/debug/deps/libfig07_collision_curve-de0a5940ae2d0196.rmeta: crates/bench/src/bin/fig07_collision_curve.rs

crates/bench/src/bin/fig07_collision_curve.rs:
