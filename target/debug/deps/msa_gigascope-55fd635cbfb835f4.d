/root/repo/target/debug/deps/msa_gigascope-55fd635cbfb835f4.d: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libmsa_gigascope-55fd635cbfb835f4.rmeta: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs Cargo.toml

crates/gigascope/src/lib.rs:
crates/gigascope/src/channel.rs:
crates/gigascope/src/executor.rs:
crates/gigascope/src/faults.rs:
crates/gigascope/src/guard.rs:
crates/gigascope/src/hfta.rs:
crates/gigascope/src/plan.rs:
crates/gigascope/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
