/root/repo/target/debug/deps/msa_collision-d988e3b4282bc8e3.d: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

/root/repo/target/debug/deps/libmsa_collision-d988e3b4282bc8e3.rmeta: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

crates/collision/src/lib.rs:
crates/collision/src/curve.rs:
crates/collision/src/models.rs:
crates/collision/src/occupancy.rs:
