/root/repo/target/debug/deps/fig10_space_alloc-601bce7bf80cecd8.d: crates/bench/src/bin/fig10_space_alloc.rs

/root/repo/target/debug/deps/libfig10_space_alloc-601bce7bf80cecd8.rmeta: crates/bench/src/bin/fig10_space_alloc.rs

crates/bench/src/bin/fig10_space_alloc.rs:
