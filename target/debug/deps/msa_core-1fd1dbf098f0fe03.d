/root/repo/target/debug/deps/msa_core-1fd1dbf098f0fe03.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

/root/repo/target/debug/deps/msa_core-1fd1dbf098f0fe03: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/sql.rs:
