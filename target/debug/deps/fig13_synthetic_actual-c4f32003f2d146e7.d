/root/repo/target/debug/deps/fig13_synthetic_actual-c4f32003f2d146e7.d: crates/bench/src/bin/fig13_synthetic_actual.rs

/root/repo/target/debug/deps/libfig13_synthetic_actual-c4f32003f2d146e7.rmeta: crates/bench/src/bin/fig13_synthetic_actual.rs

crates/bench/src/bin/fig13_synthetic_actual.rs:
