/root/repo/target/debug/deps/fig09_space_alloc-7175bff8774a3a1e.d: crates/bench/src/bin/fig09_space_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_space_alloc-7175bff8774a3a1e.rmeta: crates/bench/src/bin/fig09_space_alloc.rs Cargo.toml

crates/bench/src/bin/fig09_space_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
