/root/repo/target/debug/deps/ablation_zipf-eba528176f9ae0fa.d: crates/bench/src/bin/ablation_zipf.rs Cargo.toml

/root/repo/target/debug/deps/libablation_zipf-eba528176f9ae0fa.rmeta: crates/bench/src/bin/ablation_zipf.rs Cargo.toml

crates/bench/src/bin/ablation_zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
