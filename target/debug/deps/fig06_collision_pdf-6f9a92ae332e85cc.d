/root/repo/target/debug/deps/fig06_collision_pdf-6f9a92ae332e85cc.d: crates/bench/src/bin/fig06_collision_pdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_collision_pdf-6f9a92ae332e85cc.rmeta: crates/bench/src/bin/fig06_collision_pdf.rs Cargo.toml

crates/bench/src/bin/fig06_collision_pdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
