/root/repo/target/debug/deps/fig09_space_alloc-a95b9a4017d0118d.d: crates/bench/src/bin/fig09_space_alloc.rs

/root/repo/target/debug/deps/fig09_space_alloc-a95b9a4017d0118d: crates/bench/src/bin/fig09_space_alloc.rs

crates/bench/src/bin/fig09_space_alloc.rs:
