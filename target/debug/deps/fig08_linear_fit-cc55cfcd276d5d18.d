/root/repo/target/debug/deps/fig08_linear_fit-cc55cfcd276d5d18.d: crates/bench/src/bin/fig08_linear_fit.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_linear_fit-cc55cfcd276d5d18.rmeta: crates/bench/src/bin/fig08_linear_fit.rs Cargo.toml

crates/bench/src/bin/fig08_linear_fit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
