/root/repo/target/debug/deps/table2_alloc_error-7fd2af0d13c0da49.d: crates/bench/src/bin/table2_alloc_error.rs

/root/repo/target/debug/deps/libtable2_alloc_error-7fd2af0d13c0da49.rmeta: crates/bench/src/bin/table2_alloc_error.rs

crates/bench/src/bin/table2_alloc_error.rs:
