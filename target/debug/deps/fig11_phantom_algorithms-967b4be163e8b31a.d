/root/repo/target/debug/deps/fig11_phantom_algorithms-967b4be163e8b31a.d: crates/bench/src/bin/fig11_phantom_algorithms.rs

/root/repo/target/debug/deps/fig11_phantom_algorithms-967b4be163e8b31a: crates/bench/src/bin/fig11_phantom_algorithms.rs

crates/bench/src/bin/fig11_phantom_algorithms.rs:
