/root/repo/target/debug/deps/fig14_real_actual-2570510aef7932e8.d: crates/bench/src/bin/fig14_real_actual.rs

/root/repo/target/debug/deps/libfig14_real_actual-2570510aef7932e8.rmeta: crates/bench/src/bin/fig14_real_actual.rs

crates/bench/src/bin/fig14_real_actual.rs:
