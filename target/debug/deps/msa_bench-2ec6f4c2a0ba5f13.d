/root/repo/target/debug/deps/msa_bench-2ec6f4c2a0ba5f13.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmsa_bench-2ec6f4c2a0ba5f13.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
