/root/repo/target/debug/deps/multi_agg-41233455b84924f8.d: src/lib.rs

/root/repo/target/debug/deps/multi_agg-41233455b84924f8: src/lib.rs

src/lib.rs:
