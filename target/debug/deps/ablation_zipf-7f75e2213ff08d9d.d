/root/repo/target/debug/deps/ablation_zipf-7f75e2213ff08d9d.d: crates/bench/src/bin/ablation_zipf.rs

/root/repo/target/debug/deps/libablation_zipf-7f75e2213ff08d9d.rmeta: crates/bench/src/bin/ablation_zipf.rs

crates/bench/src/bin/ablation_zipf.rs:
