/root/repo/target/debug/deps/msa_bench-6042d78c9f248248.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsa_bench-6042d78c9f248248.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsa_bench-6042d78c9f248248.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
