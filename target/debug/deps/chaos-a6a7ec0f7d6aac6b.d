/root/repo/target/debug/deps/chaos-a6a7ec0f7d6aac6b.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-a6a7ec0f7d6aac6b.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
