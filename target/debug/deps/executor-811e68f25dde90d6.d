/root/repo/target/debug/deps/executor-811e68f25dde90d6.d: crates/bench/benches/executor.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor-811e68f25dde90d6.rmeta: crates/bench/benches/executor.rs Cargo.toml

crates/bench/benches/executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
