/root/repo/target/debug/deps/multi_agg-b9c29d522e6ab7a4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_agg-b9c29d522e6ab7a4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
