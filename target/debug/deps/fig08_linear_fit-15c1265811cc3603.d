/root/repo/target/debug/deps/fig08_linear_fit-15c1265811cc3603.d: crates/bench/src/bin/fig08_linear_fit.rs

/root/repo/target/debug/deps/fig08_linear_fit-15c1265811cc3603: crates/bench/src/bin/fig08_linear_fit.rs

crates/bench/src/bin/fig08_linear_fit.rs:
