/root/repo/target/debug/deps/msa_gigascope-7c03574c0ba56d69.d: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs

/root/repo/target/debug/deps/libmsa_gigascope-7c03574c0ba56d69.rmeta: crates/gigascope/src/lib.rs crates/gigascope/src/channel.rs crates/gigascope/src/executor.rs crates/gigascope/src/faults.rs crates/gigascope/src/guard.rs crates/gigascope/src/hfta.rs crates/gigascope/src/plan.rs crates/gigascope/src/table.rs

crates/gigascope/src/lib.rs:
crates/gigascope/src/channel.rs:
crates/gigascope/src/executor.rs:
crates/gigascope/src/faults.rs:
crates/gigascope/src/guard.rs:
crates/gigascope/src/hfta.rs:
crates/gigascope/src/plan.rs:
crates/gigascope/src/table.rs:
