/root/repo/target/debug/deps/table3_sl_stats-6154729da1daa58f.d: crates/bench/src/bin/table3_sl_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_sl_stats-6154729da1daa58f.rmeta: crates/bench/src/bin/table3_sl_stats.rs Cargo.toml

crates/bench/src/bin/table3_sl_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
