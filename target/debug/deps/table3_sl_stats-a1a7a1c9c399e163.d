/root/repo/target/debug/deps/table3_sl_stats-a1a7a1c9c399e163.d: crates/bench/src/bin/table3_sl_stats.rs

/root/repo/target/debug/deps/libtable3_sl_stats-a1a7a1c9c399e163.rmeta: crates/bench/src/bin/table3_sl_stats.rs

crates/bench/src/bin/table3_sl_stats.rs:
