/root/repo/target/debug/deps/ablation_collision_model-1e41af1fc1d12789.d: crates/bench/src/bin/ablation_collision_model.rs Cargo.toml

/root/repo/target/debug/deps/libablation_collision_model-1e41af1fc1d12789.rmeta: crates/bench/src/bin/ablation_collision_model.rs Cargo.toml

crates/bench/src/bin/ablation_collision_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
