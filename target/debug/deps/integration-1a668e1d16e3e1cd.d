/root/repo/target/debug/deps/integration-1a668e1d16e3e1cd.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-1a668e1d16e3e1cd.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
