/root/repo/target/debug/deps/ablation_zipf-da3ff696a8113eb3.d: crates/bench/src/bin/ablation_zipf.rs

/root/repo/target/debug/deps/ablation_zipf-da3ff696a8113eb3: crates/bench/src/bin/ablation_zipf.rs

crates/bench/src/bin/ablation_zipf.rs:
