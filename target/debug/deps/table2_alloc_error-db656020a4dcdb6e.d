/root/repo/target/debug/deps/table2_alloc_error-db656020a4dcdb6e.d: crates/bench/src/bin/table2_alloc_error.rs

/root/repo/target/debug/deps/table2_alloc_error-db656020a4dcdb6e: crates/bench/src/bin/table2_alloc_error.rs

crates/bench/src/bin/table2_alloc_error.rs:
