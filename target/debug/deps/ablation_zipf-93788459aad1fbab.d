/root/repo/target/debug/deps/ablation_zipf-93788459aad1fbab.d: crates/bench/src/bin/ablation_zipf.rs

/root/repo/target/debug/deps/libablation_zipf-93788459aad1fbab.rmeta: crates/bench/src/bin/ablation_zipf.rs

crates/bench/src/bin/ablation_zipf.rs:
