/root/repo/target/debug/deps/fig15_peak_load-ec6594e144392c91.d: crates/bench/src/bin/fig15_peak_load.rs

/root/repo/target/debug/deps/fig15_peak_load-ec6594e144392c91: crates/bench/src/bin/fig15_peak_load.rs

crates/bench/src/bin/fig15_peak_load.rs:
