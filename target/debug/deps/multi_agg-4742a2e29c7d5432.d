/root/repo/target/debug/deps/multi_agg-4742a2e29c7d5432.d: src/lib.rs

/root/repo/target/debug/deps/libmulti_agg-4742a2e29c7d5432.rmeta: src/lib.rs

src/lib.rs:
