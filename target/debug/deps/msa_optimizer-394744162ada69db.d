/root/repo/target/debug/deps/msa_optimizer-394744162ada69db.d: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs Cargo.toml

/root/repo/target/debug/deps/libmsa_optimizer-394744162ada69db.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs Cargo.toml

crates/optimizer/src/lib.rs:
crates/optimizer/src/alloc.rs:
crates/optimizer/src/config.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/graph.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/peakload.rs:
crates/optimizer/src/planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
