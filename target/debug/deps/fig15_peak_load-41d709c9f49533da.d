/root/repo/target/debug/deps/fig15_peak_load-41d709c9f49533da.d: crates/bench/src/bin/fig15_peak_load.rs

/root/repo/target/debug/deps/libfig15_peak_load-41d709c9f49533da.rmeta: crates/bench/src/bin/fig15_peak_load.rs

crates/bench/src/bin/fig15_peak_load.rs:
