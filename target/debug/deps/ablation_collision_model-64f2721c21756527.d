/root/repo/target/debug/deps/ablation_collision_model-64f2721c21756527.d: crates/bench/src/bin/ablation_collision_model.rs

/root/repo/target/debug/deps/libablation_collision_model-64f2721c21756527.rmeta: crates/bench/src/bin/ablation_collision_model.rs

crates/bench/src/bin/ablation_collision_model.rs:
