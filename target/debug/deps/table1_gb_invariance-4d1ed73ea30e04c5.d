/root/repo/target/debug/deps/table1_gb_invariance-4d1ed73ea30e04c5.d: crates/bench/src/bin/table1_gb_invariance.rs

/root/repo/target/debug/deps/table1_gb_invariance-4d1ed73ea30e04c5: crates/bench/src/bin/table1_gb_invariance.rs

crates/bench/src/bin/table1_gb_invariance.rs:
