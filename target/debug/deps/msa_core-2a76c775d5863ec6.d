/root/repo/target/debug/deps/msa_core-2a76c775d5863ec6.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

/root/repo/target/debug/deps/libmsa_core-2a76c775d5863ec6.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/sql.rs:
