/root/repo/target/debug/deps/fig08_linear_fit-23e9b7c2c02930a8.d: crates/bench/src/bin/fig08_linear_fit.rs

/root/repo/target/debug/deps/libfig08_linear_fit-23e9b7c2c02930a8.rmeta: crates/bench/src/bin/fig08_linear_fit.rs

crates/bench/src/bin/fig08_linear_fit.rs:
