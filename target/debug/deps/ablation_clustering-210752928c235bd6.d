/root/repo/target/debug/deps/ablation_clustering-210752928c235bd6.d: crates/bench/src/bin/ablation_clustering.rs Cargo.toml

/root/repo/target/debug/deps/libablation_clustering-210752928c235bd6.rmeta: crates/bench/src/bin/ablation_clustering.rs Cargo.toml

crates/bench/src/bin/ablation_clustering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
