/root/repo/target/debug/deps/collision-f4ee5ef8f1286cd3.d: crates/bench/benches/collision.rs Cargo.toml

/root/repo/target/debug/deps/libcollision-f4ee5ef8f1286cd3.rmeta: crates/bench/benches/collision.rs Cargo.toml

crates/bench/benches/collision.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
