/root/repo/target/debug/deps/fig15_peak_load-5e8c1b9b7f91b4cc.d: crates/bench/src/bin/fig15_peak_load.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_peak_load-5e8c1b9b7f91b4cc.rmeta: crates/bench/src/bin/fig15_peak_load.rs Cargo.toml

crates/bench/src/bin/fig15_peak_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
