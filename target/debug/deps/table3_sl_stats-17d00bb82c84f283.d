/root/repo/target/debug/deps/table3_sl_stats-17d00bb82c84f283.d: crates/bench/src/bin/table3_sl_stats.rs

/root/repo/target/debug/deps/libtable3_sl_stats-17d00bb82c84f283.rmeta: crates/bench/src/bin/table3_sl_stats.rs

crates/bench/src/bin/table3_sl_stats.rs:
