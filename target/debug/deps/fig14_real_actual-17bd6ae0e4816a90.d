/root/repo/target/debug/deps/fig14_real_actual-17bd6ae0e4816a90.d: crates/bench/src/bin/fig14_real_actual.rs

/root/repo/target/debug/deps/libfig14_real_actual-17bd6ae0e4816a90.rmeta: crates/bench/src/bin/fig14_real_actual.rs

crates/bench/src/bin/fig14_real_actual.rs:
