/root/repo/target/debug/deps/msa_bench-97d218cb578f6378.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsa_bench-97d218cb578f6378.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
