/root/repo/target/debug/deps/msa_stream-f2d301a77bb3c920.d: crates/stream/src/lib.rs crates/stream/src/attr.rs crates/stream/src/filter.rs crates/stream/src/gen/mod.rs crates/stream/src/gen/clustered.rs crates/stream/src/gen/trace.rs crates/stream/src/gen/uniform.rs crates/stream/src/gen/zipf.rs crates/stream/src/hash.rs crates/stream/src/io.rs crates/stream/src/prng.rs crates/stream/src/record.rs crates/stream/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmsa_stream-f2d301a77bb3c920.rmeta: crates/stream/src/lib.rs crates/stream/src/attr.rs crates/stream/src/filter.rs crates/stream/src/gen/mod.rs crates/stream/src/gen/clustered.rs crates/stream/src/gen/trace.rs crates/stream/src/gen/uniform.rs crates/stream/src/gen/zipf.rs crates/stream/src/hash.rs crates/stream/src/io.rs crates/stream/src/prng.rs crates/stream/src/record.rs crates/stream/src/stats.rs Cargo.toml

crates/stream/src/lib.rs:
crates/stream/src/attr.rs:
crates/stream/src/filter.rs:
crates/stream/src/gen/mod.rs:
crates/stream/src/gen/clustered.rs:
crates/stream/src/gen/trace.rs:
crates/stream/src/gen/uniform.rs:
crates/stream/src/gen/zipf.rs:
crates/stream/src/hash.rs:
crates/stream/src/io.rs:
crates/stream/src/prng.rs:
crates/stream/src/record.rs:
crates/stream/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
