/root/repo/target/debug/deps/ablation_clustering-5adcf05289e5f99d.d: crates/bench/src/bin/ablation_clustering.rs

/root/repo/target/debug/deps/ablation_clustering-5adcf05289e5f99d: crates/bench/src/bin/ablation_clustering.rs

crates/bench/src/bin/ablation_clustering.rs:
