/root/repo/target/debug/deps/fig05_collision_validation-ed4ad2de09790062.d: crates/bench/src/bin/fig05_collision_validation.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_collision_validation-ed4ad2de09790062.rmeta: crates/bench/src/bin/fig05_collision_validation.rs Cargo.toml

crates/bench/src/bin/fig05_collision_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
