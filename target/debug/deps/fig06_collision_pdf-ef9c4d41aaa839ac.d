/root/repo/target/debug/deps/fig06_collision_pdf-ef9c4d41aaa839ac.d: crates/bench/src/bin/fig06_collision_pdf.rs

/root/repo/target/debug/deps/libfig06_collision_pdf-ef9c4d41aaa839ac.rmeta: crates/bench/src/bin/fig06_collision_pdf.rs

crates/bench/src/bin/fig06_collision_pdf.rs:
