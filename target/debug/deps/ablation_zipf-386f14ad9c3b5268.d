/root/repo/target/debug/deps/ablation_zipf-386f14ad9c3b5268.d: crates/bench/src/bin/ablation_zipf.rs Cargo.toml

/root/repo/target/debug/deps/libablation_zipf-386f14ad9c3b5268.rmeta: crates/bench/src/bin/ablation_zipf.rs Cargo.toml

crates/bench/src/bin/ablation_zipf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
