/root/repo/target/debug/deps/msa_collision-24b98f9f637c1985.d: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

/root/repo/target/debug/deps/libmsa_collision-24b98f9f637c1985.rmeta: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

crates/collision/src/lib.rs:
crates/collision/src/curve.rs:
crates/collision/src/models.rs:
crates/collision/src/occupancy.rs:
