/root/repo/target/debug/deps/ablation_clustering-55c9c145b7d0e03e.d: crates/bench/src/bin/ablation_clustering.rs

/root/repo/target/debug/deps/libablation_clustering-55c9c145b7d0e03e.rmeta: crates/bench/src/bin/ablation_clustering.rs

crates/bench/src/bin/ablation_clustering.rs:
