/root/repo/target/debug/deps/fig15_peak_load-b23f716908a18744.d: crates/bench/src/bin/fig15_peak_load.rs

/root/repo/target/debug/deps/libfig15_peak_load-b23f716908a18744.rmeta: crates/bench/src/bin/fig15_peak_load.rs

crates/bench/src/bin/fig15_peak_load.rs:
