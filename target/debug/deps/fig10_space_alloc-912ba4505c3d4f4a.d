/root/repo/target/debug/deps/fig10_space_alloc-912ba4505c3d4f4a.d: crates/bench/src/bin/fig10_space_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_space_alloc-912ba4505c3d4f4a.rmeta: crates/bench/src/bin/fig10_space_alloc.rs Cargo.toml

crates/bench/src/bin/fig10_space_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
