/root/repo/target/debug/deps/msa_bench-71b3cdabd404d29c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmsa_bench-71b3cdabd404d29c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
