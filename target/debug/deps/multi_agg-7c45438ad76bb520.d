/root/repo/target/debug/deps/multi_agg-7c45438ad76bb520.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_agg-7c45438ad76bb520.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
