/root/repo/target/debug/deps/multi_agg-e30bc760137e623b.d: src/lib.rs

/root/repo/target/debug/deps/libmulti_agg-e30bc760137e623b.rlib: src/lib.rs

/root/repo/target/debug/deps/libmulti_agg-e30bc760137e623b.rmeta: src/lib.rs

src/lib.rs:
