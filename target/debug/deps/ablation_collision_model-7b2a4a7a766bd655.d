/root/repo/target/debug/deps/ablation_collision_model-7b2a4a7a766bd655.d: crates/bench/src/bin/ablation_collision_model.rs

/root/repo/target/debug/deps/ablation_collision_model-7b2a4a7a766bd655: crates/bench/src/bin/ablation_collision_model.rs

crates/bench/src/bin/ablation_collision_model.rs:
