/root/repo/target/debug/deps/integration-f0d14c10772bd56d.d: tests/integration.rs

/root/repo/target/debug/deps/integration-f0d14c10772bd56d: tests/integration.rs

tests/integration.rs:
