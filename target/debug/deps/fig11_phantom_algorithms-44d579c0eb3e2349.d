/root/repo/target/debug/deps/fig11_phantom_algorithms-44d579c0eb3e2349.d: crates/bench/src/bin/fig11_phantom_algorithms.rs

/root/repo/target/debug/deps/libfig11_phantom_algorithms-44d579c0eb3e2349.rmeta: crates/bench/src/bin/fig11_phantom_algorithms.rs

crates/bench/src/bin/fig11_phantom_algorithms.rs:
