/root/repo/target/debug/deps/fig13_synthetic_actual-6de40139a2b7c821.d: crates/bench/src/bin/fig13_synthetic_actual.rs

/root/repo/target/debug/deps/libfig13_synthetic_actual-6de40139a2b7c821.rmeta: crates/bench/src/bin/fig13_synthetic_actual.rs

crates/bench/src/bin/fig13_synthetic_actual.rs:
