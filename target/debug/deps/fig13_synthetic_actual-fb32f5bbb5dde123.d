/root/repo/target/debug/deps/fig13_synthetic_actual-fb32f5bbb5dde123.d: crates/bench/src/bin/fig13_synthetic_actual.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_synthetic_actual-fb32f5bbb5dde123.rmeta: crates/bench/src/bin/fig13_synthetic_actual.rs Cargo.toml

crates/bench/src/bin/fig13_synthetic_actual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
