/root/repo/target/debug/deps/ablation_collision_model-d7d899ae2978ec83.d: crates/bench/src/bin/ablation_collision_model.rs

/root/repo/target/debug/deps/libablation_collision_model-d7d899ae2978ec83.rmeta: crates/bench/src/bin/ablation_collision_model.rs

crates/bench/src/bin/ablation_collision_model.rs:
