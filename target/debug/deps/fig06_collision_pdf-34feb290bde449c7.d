/root/repo/target/debug/deps/fig06_collision_pdf-34feb290bde449c7.d: crates/bench/src/bin/fig06_collision_pdf.rs

/root/repo/target/debug/deps/libfig06_collision_pdf-34feb290bde449c7.rmeta: crates/bench/src/bin/fig06_collision_pdf.rs

crates/bench/src/bin/fig06_collision_pdf.rs:
