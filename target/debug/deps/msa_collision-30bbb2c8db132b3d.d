/root/repo/target/debug/deps/msa_collision-30bbb2c8db132b3d.d: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

/root/repo/target/debug/deps/msa_collision-30bbb2c8db132b3d: crates/collision/src/lib.rs crates/collision/src/curve.rs crates/collision/src/models.rs crates/collision/src/occupancy.rs

crates/collision/src/lib.rs:
crates/collision/src/curve.rs:
crates/collision/src/models.rs:
crates/collision/src/occupancy.rs:
