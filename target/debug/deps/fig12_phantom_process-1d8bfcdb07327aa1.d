/root/repo/target/debug/deps/fig12_phantom_process-1d8bfcdb07327aa1.d: crates/bench/src/bin/fig12_phantom_process.rs

/root/repo/target/debug/deps/libfig12_phantom_process-1d8bfcdb07327aa1.rmeta: crates/bench/src/bin/fig12_phantom_process.rs

crates/bench/src/bin/fig12_phantom_process.rs:
