/root/repo/target/debug/deps/integration-4be5f49546489601.d: tests/integration.rs

/root/repo/target/debug/deps/libintegration-4be5f49546489601.rmeta: tests/integration.rs

tests/integration.rs:
