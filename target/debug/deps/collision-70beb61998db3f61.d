/root/repo/target/debug/deps/collision-70beb61998db3f61.d: crates/bench/benches/collision.rs

/root/repo/target/debug/deps/libcollision-70beb61998db3f61.rmeta: crates/bench/benches/collision.rs

crates/bench/benches/collision.rs:
