/root/repo/target/debug/deps/optimizer_scenarios-728413d1e3879d61.d: tests/optimizer_scenarios.rs

/root/repo/target/debug/deps/optimizer_scenarios-728413d1e3879d61: tests/optimizer_scenarios.rs

tests/optimizer_scenarios.rs:
