/root/repo/target/debug/deps/fig06_collision_pdf-8b66a5e82bd00247.d: crates/bench/src/bin/fig06_collision_pdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_collision_pdf-8b66a5e82bd00247.rmeta: crates/bench/src/bin/fig06_collision_pdf.rs Cargo.toml

crates/bench/src/bin/fig06_collision_pdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
