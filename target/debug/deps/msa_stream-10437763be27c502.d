/root/repo/target/debug/deps/msa_stream-10437763be27c502.d: crates/stream/src/lib.rs crates/stream/src/attr.rs crates/stream/src/filter.rs crates/stream/src/gen/mod.rs crates/stream/src/gen/clustered.rs crates/stream/src/gen/trace.rs crates/stream/src/gen/uniform.rs crates/stream/src/gen/zipf.rs crates/stream/src/hash.rs crates/stream/src/io.rs crates/stream/src/prng.rs crates/stream/src/record.rs crates/stream/src/stats.rs

/root/repo/target/debug/deps/libmsa_stream-10437763be27c502.rmeta: crates/stream/src/lib.rs crates/stream/src/attr.rs crates/stream/src/filter.rs crates/stream/src/gen/mod.rs crates/stream/src/gen/clustered.rs crates/stream/src/gen/trace.rs crates/stream/src/gen/uniform.rs crates/stream/src/gen/zipf.rs crates/stream/src/hash.rs crates/stream/src/io.rs crates/stream/src/prng.rs crates/stream/src/record.rs crates/stream/src/stats.rs

crates/stream/src/lib.rs:
crates/stream/src/attr.rs:
crates/stream/src/filter.rs:
crates/stream/src/gen/mod.rs:
crates/stream/src/gen/clustered.rs:
crates/stream/src/gen/trace.rs:
crates/stream/src/gen/uniform.rs:
crates/stream/src/gen/zipf.rs:
crates/stream/src/hash.rs:
crates/stream/src/io.rs:
crates/stream/src/prng.rs:
crates/stream/src/record.rs:
crates/stream/src/stats.rs:
