/root/repo/target/debug/deps/fig10_space_alloc-cb2fa93e4d680269.d: crates/bench/src/bin/fig10_space_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_space_alloc-cb2fa93e4d680269.rmeta: crates/bench/src/bin/fig10_space_alloc.rs Cargo.toml

crates/bench/src/bin/fig10_space_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
