/root/repo/target/debug/deps/optimizer_scenarios-47b6d2488298a50b.d: tests/optimizer_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_scenarios-47b6d2488298a50b.rmeta: tests/optimizer_scenarios.rs Cargo.toml

tests/optimizer_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
