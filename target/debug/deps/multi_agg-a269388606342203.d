/root/repo/target/debug/deps/multi_agg-a269388606342203.d: src/lib.rs

/root/repo/target/debug/deps/libmulti_agg-a269388606342203.rmeta: src/lib.rs

src/lib.rs:
