/root/repo/target/debug/deps/fig05_collision_validation-60b1331a7e2f44d9.d: crates/bench/src/bin/fig05_collision_validation.rs

/root/repo/target/debug/deps/fig05_collision_validation-60b1331a7e2f44d9: crates/bench/src/bin/fig05_collision_validation.rs

crates/bench/src/bin/fig05_collision_validation.rs:
