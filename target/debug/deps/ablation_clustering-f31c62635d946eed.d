/root/repo/target/debug/deps/ablation_clustering-f31c62635d946eed.d: crates/bench/src/bin/ablation_clustering.rs

/root/repo/target/debug/deps/libablation_clustering-f31c62635d946eed.rmeta: crates/bench/src/bin/ablation_clustering.rs

crates/bench/src/bin/ablation_clustering.rs:
