/root/repo/target/debug/deps/msa_optimizer-412636c557131fdf.d: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs

/root/repo/target/debug/deps/libmsa_optimizer-412636c557131fdf.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/alloc.rs crates/optimizer/src/config.rs crates/optimizer/src/cost.rs crates/optimizer/src/graph.rs crates/optimizer/src/greedy.rs crates/optimizer/src/peakload.rs crates/optimizer/src/planner.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/alloc.rs:
crates/optimizer/src/config.rs:
crates/optimizer/src/cost.rs:
crates/optimizer/src/graph.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/peakload.rs:
crates/optimizer/src/planner.rs:
