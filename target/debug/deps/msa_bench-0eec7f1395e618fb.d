/root/repo/target/debug/deps/msa_bench-0eec7f1395e618fb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/msa_bench-0eec7f1395e618fb: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
