/root/repo/target/debug/deps/executor-7660b137df515333.d: crates/bench/benches/executor.rs

/root/repo/target/debug/deps/libexecutor-7660b137df515333.rmeta: crates/bench/benches/executor.rs

crates/bench/benches/executor.rs:
