/root/repo/target/debug/deps/msa_core-ad40dd872b052611.d: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

/root/repo/target/debug/deps/libmsa_core-ad40dd872b052611.rlib: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

/root/repo/target/debug/deps/libmsa_core-ad40dd872b052611.rmeta: crates/core/src/lib.rs crates/core/src/adaptive.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/sql.rs

crates/core/src/lib.rs:
crates/core/src/adaptive.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/sql.rs:
