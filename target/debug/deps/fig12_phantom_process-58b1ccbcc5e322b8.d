/root/repo/target/debug/deps/fig12_phantom_process-58b1ccbcc5e322b8.d: crates/bench/src/bin/fig12_phantom_process.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_phantom_process-58b1ccbcc5e322b8.rmeta: crates/bench/src/bin/fig12_phantom_process.rs Cargo.toml

crates/bench/src/bin/fig12_phantom_process.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
