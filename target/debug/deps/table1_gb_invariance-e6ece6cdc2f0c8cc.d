/root/repo/target/debug/deps/table1_gb_invariance-e6ece6cdc2f0c8cc.d: crates/bench/src/bin/table1_gb_invariance.rs

/root/repo/target/debug/deps/libtable1_gb_invariance-e6ece6cdc2f0c8cc.rmeta: crates/bench/src/bin/table1_gb_invariance.rs

crates/bench/src/bin/table1_gb_invariance.rs:
