/root/repo/target/debug/deps/properties-a6ec7a2be704a70d.d: tests/properties.rs

/root/repo/target/debug/deps/properties-a6ec7a2be704a70d: tests/properties.rs

tests/properties.rs:
