/root/repo/target/debug/deps/fig11_phantom_algorithms-f0ec648e9204db80.d: crates/bench/src/bin/fig11_phantom_algorithms.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_phantom_algorithms-f0ec648e9204db80.rmeta: crates/bench/src/bin/fig11_phantom_algorithms.rs Cargo.toml

crates/bench/src/bin/fig11_phantom_algorithms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
