/root/repo/target/debug/deps/fig07_collision_curve-72217bf893e37e2d.d: crates/bench/src/bin/fig07_collision_curve.rs

/root/repo/target/debug/deps/fig07_collision_curve-72217bf893e37e2d: crates/bench/src/bin/fig07_collision_curve.rs

crates/bench/src/bin/fig07_collision_curve.rs:
