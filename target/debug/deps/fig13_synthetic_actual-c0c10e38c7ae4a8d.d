/root/repo/target/debug/deps/fig13_synthetic_actual-c0c10e38c7ae4a8d.d: crates/bench/src/bin/fig13_synthetic_actual.rs

/root/repo/target/debug/deps/fig13_synthetic_actual-c0c10e38c7ae4a8d: crates/bench/src/bin/fig13_synthetic_actual.rs

crates/bench/src/bin/fig13_synthetic_actual.rs:
