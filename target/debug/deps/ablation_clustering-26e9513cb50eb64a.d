/root/repo/target/debug/deps/ablation_clustering-26e9513cb50eb64a.d: crates/bench/src/bin/ablation_clustering.rs Cargo.toml

/root/repo/target/debug/deps/libablation_clustering-26e9513cb50eb64a.rmeta: crates/bench/src/bin/ablation_clustering.rs Cargo.toml

crates/bench/src/bin/ablation_clustering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
