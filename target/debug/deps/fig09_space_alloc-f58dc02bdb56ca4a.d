/root/repo/target/debug/deps/fig09_space_alloc-f58dc02bdb56ca4a.d: crates/bench/src/bin/fig09_space_alloc.rs

/root/repo/target/debug/deps/libfig09_space_alloc-f58dc02bdb56ca4a.rmeta: crates/bench/src/bin/fig09_space_alloc.rs

crates/bench/src/bin/fig09_space_alloc.rs:
