//! Bound-soundness battery: the degraded-answer subsystem under every
//! loss class the runtime can produce.
//!
//! The contract under test, for every cell of
//! {shard counts} × {channel loss, duplication, burst} × {panic, stall,
//! poison} × {crash points}:
//!
//! * **sound** — the fault-free true count lies inside the guaranteed
//!   interval: `lo <= truth <= hi` per query, and every per-group count
//!   lies inside its group interval;
//! * **exact when nothing was lost** — fault-free runs report the
//!   degenerate interval `lo == hi == truth`, bit-identical across
//!   shard counts;
//! * **deterministic** — two seeded runs of the same cell produce
//!   bit-identical [`BoundsReport`]s;
//! * **policy-faithful** — `ExactOrStall` never reports a
//!   non-degenerate interval, `BoundedApprox { max_width }` keeps the
//!   width within the promise unless `bound_breached` says otherwise,
//!   and the breach flag survives crash recovery bit-exactly.
//!
//! `MSA_SCALE` (0, 1] shrinks the trace and trims the matrix as in the
//! differential battery.

use msa_core::{
    AttrSet, BoundsReport, Burst, CostParams, CrashPlan, DegradationPolicy, Executor, FaultPlan,
    GuardPolicy, Record, ShardFault, ShardedExecutor, SupervisorPolicy,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_stream::hash::FastMap;
use msa_stream::{GroupKey, UniformStreamBuilder};

const EPOCH: u64 = 500_000;
const SEED: u64 = 0xB0DD;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn scale() -> f64 {
    std::env::var("MSA_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 1.0)
}

fn shard_counts(scale: f64) -> Vec<usize> {
    if scale < 0.5 {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// AB phantom feeding A and B query tables (the differential plan).
fn phantom_plan() -> PhysicalPlan {
    PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: s("B"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])
    .unwrap()
}

fn stream(scale: f64) -> Vec<Record> {
    let records = ((6_000.0 * scale) as usize).max(800);
    UniformStreamBuilder::new(4, 120)
        .records(records)
        .duration_secs(6.0)
        .seed(SEED)
        .build()
        .records
}

fn build(n: usize) -> ShardedExecutor {
    ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED, n).unwrap()
}

/// Exact per-group recount of the undisturbed stream for one query.
fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
    let mut m = FastMap::default();
    for r in records {
        *m.entry(r.project(q)).or_insert(0) += 1;
    }
    m
}

/// Core soundness assertion: the fault-free truth of `records` lies
/// inside every query interval and every group interval of `bounds`.
fn assert_sound(label: &str, bounds: &BoundsReport, records: &[Record]) {
    let truth = records.len() as u64;
    for q in [s("A"), s("B")] {
        let qb = bounds
            .for_query(q)
            .unwrap_or_else(|| panic!("{label}: no bounds for query {q}"));
        assert!(
            qb.contains(truth),
            "{label}: query {q}: truth {truth} outside [{}, {}]",
            qb.lo(),
            qb.hi()
        );
        assert_eq!(
            qb.width(),
            qb.losses.total(),
            "{label}: width must equal attributed loss mass"
        );
        for (key, count) in exact(records, q) {
            let (lo, hi) = qb.group_bounds(key);
            assert!(
                lo <= count && count <= hi,
                "{label}: query {q} group {key}: true {count} outside [{lo}, {hi}]"
            );
        }
    }
}

/// Fault-free runs report the degenerate interval, bit-identical across
/// every shard count, and the live (pre-finish) view is already sound.
#[test]
fn fault_free_intervals_are_degenerate_and_shard_invariant() {
    let records = stream(scale());
    let truth = records.len() as u64;
    let mut reference: Option<BoundsReport> = None;
    for &n in &shard_counts(scale()) {
        let mut sx = build(n);
        sx.run(&records);
        // Live view before the final flush: mass still parked in tables
        // is progress, not error — the progressive bound covers it.
        let live = sx.bounds();
        for qb in &live.queries {
            assert!(
                qb.lo() <= truth && truth <= qb.hi_progressive(),
                "{n} shards: live truth {truth} outside [{}, {}]",
                qb.lo(),
                qb.hi_progressive()
            );
        }
        let (report, hfta) = sx.finish();
        let bounds = BoundsReport::at_finish(&report, &hfta);
        assert_sound(&format!("{n} shards/fault-free"), &bounds, &records);
        assert!(bounds.is_exact(), "{n} shards: fault-free must be exact");
        assert!(!bounds.bound_breached);
        for q in [s("A"), s("B")] {
            let qb = bounds.for_query(q).unwrap();
            assert_eq!(qb.observed, truth, "{n} shards: observed mass");
            assert_eq!(qb.in_flight, 0, "{n} shards: nothing in flight");
            assert_eq!((qb.lo(), qb.hi()), (truth, truth));
            // Degenerate group intervals equal the exact recount.
            for (key, count) in exact(&records, q) {
                assert_eq!(qb.group_bounds(key), (count, count), "{n} shards/{q}");
            }
        }
        // The interval bytes are invariant in the shard count.
        match &reference {
            Some(r) => assert_eq!(*r, bounds, "{n} shards vs reference bounds"),
            None => reference = Some(bounds),
        }
    }
}

/// {shards} × {loss, dup, loss+dup} channel-fault matrix: intervals
/// contain the truth, losses land in the right classes, and two seeded
/// runs agree bit for bit.
#[test]
fn channel_fault_matrix_is_sound_and_deterministic() {
    let records = stream(scale());
    let cells: Vec<(&str, FaultPlan)> = vec![
        ("loss", FaultPlan::new(0xB01).with_eviction_loss(0.10)),
        ("dup", FaultPlan::new(0xB02).with_eviction_duplication(0.08)),
        (
            "loss+dup",
            FaultPlan::new(0xB03)
                .with_eviction_loss(0.06)
                .with_eviction_duplication(0.05),
        ),
    ];
    for &n in &shard_counts(scale()) {
        for (fname, faults) in &cells {
            let label = format!("{n} shards/{fname}");
            let run_once = || {
                let mut sx = build(n).with_faults(faults);
                sx.run(&records);
                let (report, hfta) = sx.finish();
                (BoundsReport::at_finish(&report, &hfta), report)
            };
            let (b1, report) = run_once();
            let (b2, _) = run_once();
            assert_eq!(b1, b2, "{label}: bounds across two runs");
            assert_sound(&label, &b1, &records);
            for q in [s("A"), s("B")] {
                let qb = b1.for_query(q).unwrap();
                assert_eq!(qb.in_flight, 0, "{label}: ledgers attribute everything");
                // The injected class is the one that widened the interval.
                assert_eq!(
                    qb.losses.channel_dropped,
                    report.dropped_records_for(q),
                    "{label}"
                );
                assert_eq!(
                    qb.losses.channel_duplicated,
                    report.duplicated_records_for(q),
                    "{label}"
                );
                assert_eq!(qb.losses.guard_shed, 0, "{label}: no guard configured");
            }
            if fname.contains("loss") {
                assert!(
                    [s("A"), s("B")].iter().any(|&q| b1
                        .for_query(q)
                        .unwrap()
                        .losses
                        .channel_dropped
                        > 0),
                    "{label}: loss must fire"
                );
            }
            if fname.contains("dup") {
                assert!(
                    [s("A"), s("B")].iter().any(|&q| b1
                        .for_query(q)
                        .unwrap()
                        .losses
                        .channel_duplicated
                        > 0),
                    "{label}: dup must fire"
                );
            }
        }
    }
}

/// A rate burst changes *which* stream arrives, not the soundness
/// contract: bounds are computed against the disturbed stream's truth,
/// stay sound under composed channel loss, and are deterministic.
#[test]
fn burst_disturbance_keeps_bounds_sound() {
    let records = stream(scale());
    let plan = FaultPlan::new(0xB57).with_burst(Burst {
        start_epoch: 2,
        epochs: 2,
        amplification: 3,
        fresh_groups: false,
    });
    let disturbed = plan.apply_to_stream(&records, EPOCH);
    assert!(disturbed.len() > records.len(), "burst must add mass");
    let faults = FaultPlan::new(0xB58).with_eviction_loss(0.07);
    for &n in &shard_counts(scale()) {
        let label = format!("{n} shards/burst");
        let run_once = || {
            let mut sx = build(n).with_faults(&faults);
            sx.run(&disturbed);
            let (report, hfta) = sx.finish();
            BoundsReport::at_finish(&report, &hfta)
        };
        let b1 = run_once();
        assert_eq!(b1, run_once(), "{label}: bounds across two runs");
        assert_sound(&label, &b1, &disturbed);
    }
}

/// {panic, stall, poison} × {shards} supervision drills: replay-covered
/// faults stay exact, quarantines widen the interval by exactly the
/// poisoned mass, and the replay odometer surfaces what supervision
/// saved.
#[test]
fn supervision_drills_keep_bounds_sound() {
    let scale = scale();
    let records = stream(scale);
    let truth = records.len() as u64;
    for &n in &shard_counts(scale) {
        let len = build(n).partition(&records)[n - 1].len() as u64;
        let drills: Vec<(&str, ShardFault, SupervisorPolicy)> = vec![
            (
                "panic",
                ShardFault::panic_at(len / 2),
                SupervisorPolicy::default(),
            ),
            (
                "stall",
                ShardFault::stall_at(len / 3, 1 << 40),
                SupervisorPolicy::default().with_stall_deadline(16),
            ),
            (
                "poison",
                ShardFault::panic_repeating(len / 2, 8),
                SupervisorPolicy::default(),
            ),
        ];
        for (dname, fault, policy) in drills {
            let label = format!("{n} shards/{dname}");
            let run_once = || {
                let mut sx = build(n)
                    .with_shard_fault(n - 1, fault)
                    .with_supervision(policy);
                sx.run(&records);
                let live = sx.bounds();
                let (report, hfta) = sx.finish();
                (live, BoundsReport::at_finish(&report, &hfta))
            };
            let (live1, b1) = run_once();
            let (live2, b2) = run_once();
            assert_eq!(live1, live2, "{label}: live bounds across runs");
            assert_eq!(b1, b2, "{label}: final bounds across runs");
            assert_sound(&label, &b1, &records);
            if dname == "poison" {
                // Exactly the quarantined record is uncertain.
                for q in [s("A"), s("B")] {
                    let qb = b1.for_query(q).unwrap();
                    assert_eq!(qb.losses.poison_quarantined, 1, "{label}");
                    assert_eq!((qb.lo(), qb.hi()), (truth - 1, truth), "{label}");
                    assert!(!qb.is_exact(), "{label}");
                }
            } else {
                // Replay covered the outage: the answer is exact and the
                // replayed mass is credited, not charged.
                assert!(b1.is_exact(), "{label}: replay-covered must be exact");
                assert!(
                    live1.records_replayed > 0,
                    "{label}: replay odometer must show the save"
                );
            }
        }
    }
}

/// Replay-buffer overrun and a mid-epoch dead shard: both losses are
/// typed, the intervals stay sound, and the cells are deterministic.
#[test]
fn overrun_and_shutdown_losses_stay_sound() {
    let records = stream(scale());
    let n = 4;
    let len = build(n).partition(&records)[n - 1].len() as u64;

    // Zero-capacity replay buffer: the checkpoint-to-kill gap is lost.
    let overrun_once = || {
        let mut sx = build(n)
            .with_shard_fault(n - 1, ShardFault::panic_at(3 * len / 4))
            .with_supervision(SupervisorPolicy::default().with_replay_capacity(0));
        sx.run(&records);
        let (report, hfta) = sx.finish();
        BoundsReport::at_finish(&report, &hfta)
    };
    let b1 = overrun_once();
    assert_eq!(b1, overrun_once(), "overrun: bounds across runs");
    assert_sound("overrun", &b1, &records);
    let qb = b1.for_query(s("A")).unwrap();
    assert!(qb.losses.replay_overrun > 0, "overrun class must fire");
    assert_eq!(qb.losses.guard_shed, 0, "overrun is not guard shedding");

    // A dead *process* mid-epoch: its in-flight feed is shutdown loss,
    // its parked table mass is abandoned — never silently dropped.
    let shutdown_once = || {
        let mut sx = build(n)
            .with_durability()
            .with_crash(n - 1, CrashPlan::at_record(len / 2));
        sx.run(&records);
        let (report, hfta) = sx.finish();
        BoundsReport::at_finish(&report, &hfta)
    };
    let b2 = shutdown_once();
    assert_eq!(b2, shutdown_once(), "shutdown: bounds across runs");
    assert_sound("shutdown", &b2, &records);
    let qb = b2.for_query(s("A")).unwrap();
    assert!(qb.losses.shutdown_lost > 0, "shutdown class must fire");
    assert!(qb.losses.abandoned > 0, "abandoned class must fire");
    assert!(!b2.is_exact(), "a dead shard cannot be exact");
}

/// Overload harness shared by the policy tests: a 4× burst against a
/// deliberately modest budget, long enough to force the guard ladder up.
fn overload_stream(scale: f64) -> (Vec<Record>, f64, u64) {
    let epoch_micros = 1_000_000;
    let records = ((24_000.0 * scale) as usize).max(6_000);
    let organic = UniformStreamBuilder::new(4, 50)
        .records(records)
        .duration_secs(6.0)
        .seed(3)
        .build();
    let mut base = Executor::new(phantom_plan(), CostParams::paper(), epoch_micros, 7);
    base.run(&organic.records);
    let (base_report, _) = base.finish();
    let planned: f64 = base_report
        .epoch_costs
        .iter()
        .map(|&(_, i, f)| i + f)
        .fold(0.0, f64::max);
    let faults = FaultPlan::new(17).with_burst(Burst {
        start_epoch: 2,
        epochs: 2,
        amplification: 4,
        fresh_groups: false,
    });
    let disturbed = faults.apply_to_stream(&organic.records, epoch_micros);
    // Deliberately tight budget (well under the organic peak): the
    // guard must reach the shedding rung at every `MSA_SCALE`, because
    // these tests exercise the policy wiring, not the ladder timing
    // (the chaos suite owns that).
    (disturbed, 0.6 * planned, epoch_micros)
}

fn overloaded(policy: DegradationPolicy, e_p: f64, epoch: u64) -> Executor {
    let mut guard = GuardPolicy::new(e_p).with_degradation(policy);
    guard.recover_ratio = 0.6;
    guard.shed_factor = 4;
    Executor::new(phantom_plan(), CostParams::paper(), epoch, 7).with_guard(guard)
}

/// `BestEffort` sheds freely under the burst; every shed record is
/// attributed to the guard-shed class and the interval still contains
/// the truth. No budget means no breach, ever.
#[test]
fn best_effort_shedding_is_attributed_and_sound() {
    let (records, e_p, epoch) = overload_stream(scale());
    let run_once = || {
        let mut ex = overloaded(DegradationPolicy::BestEffort, e_p, epoch);
        ex.run(&records);
        let live = ex.bounds();
        let (report, hfta) = ex.finish();
        (live, BoundsReport::at_finish(&report, &hfta), report)
    };
    let (live1, b1, report) = run_once();
    let (live2, b2, _) = run_once();
    assert_eq!(live1, live2, "best-effort: live bounds across runs");
    assert_eq!(b1, b2, "best-effort: final bounds across runs");
    assert!(report.records_shed > 0, "the burst must force shedding");
    assert_sound("best-effort", &b1, &records);
    assert!(!b1.bound_breached, "best-effort has no budget to breach");
    assert_eq!(b1.records_shed_denied, 0, "best-effort never denies");
    assert_eq!(
        live1.records_lost, report.records_shed,
        "every shed is metered on the odometer"
    );
    let qb = b1.for_query(s("A")).unwrap();
    assert_eq!(qb.losses.guard_shed, report.records_shed);
}

/// `ExactOrStall` under the same burst: the lossy rung is skipped, every
/// drop slot is denied, and the reported interval is degenerate — the
/// answer never degrades, whatever the load.
#[test]
fn exact_or_stall_never_reports_a_non_degenerate_interval() {
    let (records, e_p, epoch) = overload_stream(scale());
    let truth = records.len() as u64;
    let mut ex = overloaded(DegradationPolicy::ExactOrStall, e_p, epoch);
    ex.run(&records);
    let (report, hfta) = ex.finish();
    let bounds = BoundsReport::at_finish(&report, &hfta);
    assert_eq!(report.records_shed, 0, "exact-or-stall must not shed");
    assert!(
        bounds.records_shed_denied > 0,
        "the overload must have asked; every ask must be denied"
    );
    assert!(bounds.is_exact(), "interval must stay degenerate");
    assert!(!bounds.bound_breached);
    assert_sound("exact-or-stall", &bounds, &records);
    for q in [s("A"), s("B")] {
        let qb = bounds.for_query(q).unwrap();
        assert_eq!((qb.lo(), qb.hi()), (truth, truth), "{q}");
    }
}

/// `BoundedApprox { max_width }` spends exactly its budget and stops:
/// the final width never exceeds the promise, the denial counter shows
/// the guard holding the line, and the breach flag stays down.
#[test]
fn bounded_approx_caps_the_interval_width() {
    let (records, e_p, epoch) = overload_stream(scale());
    let max_width = 64;
    let run_once = || {
        let mut ex = overloaded(DegradationPolicy::BoundedApprox { max_width }, e_p, epoch);
        ex.run(&records);
        let live = ex.bounds();
        let (report, hfta) = ex.finish();
        (live, BoundsReport::at_finish(&report, &hfta), report)
    };
    let (live1, b1, report) = run_once();
    let (live2, b2, _) = run_once();
    assert_eq!(live1, live2, "bounded: live bounds across runs");
    assert_eq!(b1, b2, "bounded: final bounds across runs");
    assert_sound("bounded", &b1, &records);
    assert!(!b1.bound_breached, "controlled shedding never breaches");
    assert_eq!(
        report.records_shed, max_width,
        "the guard spends its whole budget under a sustained burst"
    );
    assert!(
        b1.max_width() <= max_width,
        "width {} exceeds the promise {max_width}",
        b1.max_width()
    );
    assert!(
        b1.records_shed_denied > 0,
        "post-budget drop slots must be denied"
    );
    assert_eq!(live1.records_lost, max_width);
}

/// Uncontrolled loss (channel drops) past the promised width latches
/// the breach flag — the interval stays sound, the *promise* breaks,
/// and the latch is deterministic.
#[test]
fn uncontrolled_loss_breaches_the_promise_deterministically() {
    let records = stream(scale());
    let run_once = || {
        let guard = GuardPolicy::new(1e12)
            .with_degradation(DegradationPolicy::BoundedApprox { max_width: 1 });
        let mut ex = Executor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED)
            .with_guard(guard)
            .with_faults(&FaultPlan::new(0xFA11).with_eviction_loss(0.10));
        ex.run(&records);
        let (report, hfta) = ex.finish();
        (BoundsReport::at_finish(&report, &hfta), report)
    };
    let (b1, report) = run_once();
    let (b2, _) = run_once();
    assert_eq!(b1, b2, "breach latch across runs");
    assert!(report.evictions_dropped > 1, "drops must exceed the budget");
    assert!(
        b1.bound_breached,
        "uncontrolled loss past the budget must latch the breach"
    );
    assert_sound("breached", &b1, &records);
    assert!(
        b1.max_width() > 1,
        "the width really did exceed the promise"
    );
}

/// Crash → recover → resume under guard shedding *and* channel faults:
/// the recovered run's bounds — intervals, loss classes, breach flag —
/// are bit-identical to the never-crashed run at every crash point.
#[test]
fn bounds_survive_crash_recovery_bit_identical() {
    let scale = scale();
    let records = stream(scale);
    let faults = FaultPlan::new(0xC4A5)
        .with_eviction_loss(0.08)
        .with_eviction_duplication(0.04);
    let guard =
        GuardPolicy::new(1e12).with_degradation(DegradationPolicy::BoundedApprox { max_width: 3 });

    let mut base = Executor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED)
        .with_guard(guard)
        .with_faults(&faults);
    base.run(&records);
    let (base_report, base_hfta) = base.finish();
    let base_bounds = BoundsReport::at_finish(&base_report, &base_hfta);
    assert_sound("recovery baseline", &base_bounds, &records);
    assert!(
        base_bounds.bound_breached,
        "the 8% loss must breach the tiny promise"
    );

    let n = records.len() as u64;
    let crash_points = if scale < 0.5 {
        vec![n / 4, n / 2]
    } else {
        vec![1, n / 4, n / 2, 3 * n / 4, n - 1]
    };
    for at in crash_points {
        let label = format!("crash at record {at}");
        let mut crashed = Executor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED)
            .with_guard(guard)
            .with_faults(&faults)
            .with_eviction_log()
            .with_snapshots()
            .with_crash(CrashPlan::at_record(at));
        crashed.run(&records);
        assert!(crashed.has_crashed(), "{label}: fuse must fire");
        // The degraded-answer view of the crashed process: still sound
        // against the truth, even with the tail of the stream unseen.
        let partial = crashed.bounds();
        for qb in &partial.queries {
            assert!(
                qb.lo() <= n,
                "{label}: partial lo {} above the whole-stream truth",
                qb.lo()
            );
        }
        let (snap, log) = crashed.durable_state().expect("genesis snapshot exists");
        let mut recovered = Executor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED)
            .recover(&snap, log)
            .unwrap_or_else(|e| panic!("{label}: recovery refused: {e}"));
        recovered.run(&records[snap.records_hwm as usize..]);
        let (report, hfta) = recovered.finish();
        let bounds = BoundsReport::at_finish(&report, &hfta);
        assert_eq!(bounds, base_bounds, "{label}: bounds vs never-crashed");
    }
}
