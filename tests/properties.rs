//! Randomized property tests over the core data structures and
//! invariants. Cases are drawn from a seeded [`SplitMix64`] so every run
//! explores the same (large) sample deterministically — the workspace
//! builds offline with no property-testing framework.

use msa_core::{AttrSet, Configuration, CostParams, Executor, LinearModel, Record};
use msa_gigascope::{PhysicalPlan, PlanNode};
use msa_optimizer::cost::{per_record_cost, CostContext};
use msa_optimizer::{AllocStrategy, FeedingGraph};
use msa_stream::hash::FastMap;
use msa_stream::{DatasetStats, GroupKey, SplitMix64};
use std::collections::BTreeSet;

/// A non-empty set of distinct non-empty attribute subsets over 4
/// attributes.
fn query_set(rng: &mut SplitMix64) -> Vec<AttrSet> {
    let n = 1 + rng.gen_index(4);
    let mut bits: BTreeSet<u16> = BTreeSet::new();
    while bits.len() < n {
        bits.insert(1 + rng.gen_u32_below(15) as u16);
    }
    bits.into_iter()
        .map(|b| AttrSet::from_bits(b).expect("within range"))
        .collect()
}

/// A batch of records over small domains (to force collisions).
fn record_batch(rng: &mut SplitMix64) -> Vec<Record> {
    let n = 1 + rng.gen_index(399);
    (0..n)
        .map(|i| {
            let vals = [
                rng.gen_u32_below(7),
                rng.gen_u32_below(5),
                rng.gen_u32_below(4),
                rng.gen_u32_below(3),
            ];
            Record::new(&vals, i as u64)
        })
        .collect()
}

fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
    let mut m = FastMap::default();
    for r in records {
        *m.entry(r.project(q)).or_insert(0) += 1;
    }
    m
}

/// The executor produces exact counts for ANY valid plan shape and ANY
/// input batch — the fundamental correctness invariant.
#[test]
fn executor_is_exact_for_any_phantom_tree() {
    let mut rng = SplitMix64::new(0xE0);
    let s = |x: &str| AttrSet::parse(x).unwrap();
    for _ in 0..40 {
        let records = record_batch(&mut rng);
        let buckets = 1 + rng.gen_index(15);
        let plan = PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("ABCD"),
                parent: None,
                buckets,
                is_query: false,
            },
            PlanNode {
                attrs: s("ABC"),
                parent: Some(0),
                buckets,
                is_query: false,
            },
            PlanNode {
                attrs: s("AB"),
                parent: Some(1),
                buckets,
                is_query: true,
            },
            PlanNode {
                attrs: s("C"),
                parent: Some(1),
                buckets,
                is_query: true,
            },
            PlanNode {
                attrs: s("D"),
                parent: Some(0),
                buckets,
                is_query: true,
            },
        ])
        .unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 11);
        ex.run(&records);
        let (_, hfta) = ex.finish();
        for q in ["AB", "C", "D"] {
            assert_eq!(hfta.totals(s(q)), exact(&records, s(q)), "query {q}");
        }
    }
}

/// Feeding-graph candidates are unions of queries, strict supersets of
/// at least two queries, and never queries themselves.
#[test]
fn feeding_graph_candidates_are_sound() {
    let mut rng = SplitMix64::new(0xF1);
    for _ in 0..200 {
        let queries = query_set(&mut rng);
        let graph = FeedingGraph::new(&queries);
        for &p in graph.phantom_candidates() {
            assert!(!queries.contains(&p));
            let covered = queries.iter().filter(|q| q.is_proper_subset_of(p)).count();
            assert!(covered >= 2, "{p} covers {covered} queries");
            let union = queries
                .iter()
                .filter(|q| q.is_subset_of(p))
                .fold(AttrSet::EMPTY, |u, &q| u.union(q));
            assert_eq!(union, p, "candidate {p} is not a union of covered queries");
        }
    }
}

/// Configurations derived from any phantom subset are forests: every
/// non-raw relation's parent is a strict superset, queries are exactly
/// the declared ones, and notation round-trips.
#[test]
fn configuration_tree_invariants() {
    let mut rng = SplitMix64::new(0xC2);
    for _ in 0..200 {
        let queries = query_set(&mut rng);
        let mask = rng.next_u64() % 64;
        let graph = FeedingGraph::new(&queries);
        let phantoms: Vec<AttrSet> = graph
            .phantom_candidates()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let cfg = Configuration::with_phantoms(&queries, &phantoms);
        assert_eq!(cfg.len(), queries.len() + phantoms.len());
        for r in cfg.relations() {
            if let Some(p) = cfg.parent(r) {
                assert!(r.is_proper_subset_of(p));
                // Parent is minimal: no other instantiated relation
                // strictly between r and p.
                for other in cfg.relations() {
                    assert!(
                        !(r.is_proper_subset_of(other) && other.is_proper_subset_of(p)),
                        "{p} not minimal parent of {r}: {other} between"
                    );
                }
            }
        }
        let round = Configuration::parse(&cfg.notation(), &queries).unwrap();
        assert_eq!(round, cfg);
    }
}

/// Every allocation strategy spends (approximately) the whole budget and
/// gives every table at least one bucket.
#[test]
fn allocations_conserve_budget() {
    let mut rng = SplitMix64::new(0xA3);
    for _ in 0..60 {
        let queries = query_set(&mut rng);
        let mask = rng.next_u64() % 16;
        let m = rng.gen_range_f64(2_000.0, 50_000.0);
        let graph = FeedingGraph::new(&queries);
        let phantoms: Vec<AttrSet> = graph
            .phantom_candidates()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let cfg = Configuration::with_phantoms(&queries, &phantoms);
        // Synthetic statistics: groups grow with arity.
        let stats =
            DatasetStats::from_group_counts(cfg.relations().map(|r| (r, 100 * r.len())), 100_000);
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        for strat in AllocStrategy::HEURISTICS {
            let alloc = strat.allocate(&cfg, m, &ctx);
            let spent = alloc.space_words();
            assert!(
                (spent - m).abs() / m < 0.05,
                "{}: spent {spent} of {m}",
                strat.name()
            );
            for (r, b) in alloc.iter() {
                assert!(b >= 1.0, "{}: {r} has {b} buckets", strat.name());
            }
        }
    }
}

/// The numeric optimum never loses to any heuristic (convexity of the
/// posynomial cost in log-space).
#[test]
fn numeric_allocation_dominates_heuristics() {
    let mut rng = SplitMix64::new(0xB4);
    let s = |x: &str| AttrSet::parse(x).unwrap();
    let queries = vec![s("AB"), s("BC"), s("BD"), s("CD")];
    for _ in 0..12 {
        let mask = rng.next_u64() % 16;
        let m = rng.gen_range_f64(4_000.0, 40_000.0);
        let graph = FeedingGraph::new(&queries);
        let phantoms: Vec<AttrSet> = graph
            .phantom_candidates()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let cfg = Configuration::with_phantoms(&queries, &phantoms);
        let stats = DatasetStats::from_group_counts(
            cfg.relations().map(|r| (r, 300 * r.len() * r.len())),
            100_000,
        );
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let numeric = msa_optimizer::alloc::allocate_numeric(&cfg, m, &ctx, 150);
        let c_numeric = per_record_cost(&cfg, &numeric, &ctx);
        for strat in AllocStrategy::HEURISTICS {
            let a = strat.allocate(&cfg, m, &ctx);
            let c = per_record_cost(&cfg, &a, &ctx);
            assert!(
                c_numeric <= c * 1.02,
                "{}: numeric {c_numeric} vs heuristic {c}",
                strat.name()
            );
        }
    }
}

/// Collision models stay within [0, 1], increase with g, decrease with
/// b, and the closed form equals the literal sum.
#[test]
fn collision_model_invariants() {
    use msa_collision::models;
    let mut rng = SplitMix64::new(0xD5);
    for _ in 0..300 {
        let g = 1 + rng.next_u64() % 4999;
        let b = 1 + rng.next_u64() % 4999;
        let x = models::precise(g, b);
        assert!((0.0..=1.0).contains(&x));
        assert!(models::precise(g + 100, b) >= x - 1e-12);
        assert!(models::precise(g, b + 100) <= x + 1e-12);
        if b >= 2 {
            let sum = models::precise_sum(g, b);
            assert!((x - sum).abs() < 1e-8, "g={g} b={b}: {x} vs {sum}");
        }
    }
}

/// GroupKey projection/reprojection consistency for arbitrary records
/// and attribute-set pairs.
#[test]
fn reprojection_commutes() {
    let mut rng = SplitMix64::new(0xE6);
    for _ in 0..500 {
        let mut attrs = [0u32; 8];
        for slot in &mut attrs {
            *slot = rng.next_u32();
        }
        let own_bits = 1 + rng.gen_u32_below(255) as u16;
        let sub_bits = rng.gen_u32_below(256) as u16;
        let own = AttrSet::from_bits(own_bits).unwrap();
        let target = AttrSet::from_bits(sub_bits & own_bits).unwrap();
        if target.is_empty() {
            continue;
        }
        let r = Record {
            attrs,
            ts_micros: 0,
        };
        assert_eq!(r.project(own).reproject(own, target), r.project(target));
    }
}

/// AggState merging is associative and commutative — the invariant that
/// makes partial aggregates combine correctly no matter how evictions
/// interleave along the cascade.
#[test]
fn agg_state_merge_is_order_insensitive() {
    use msa_gigascope::table::AggState;
    let mut rng = SplitMix64::new(0xF7);
    for _ in 0..200 {
        let n = 1 + rng.gen_index(39);
        let values: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let fold = |order: &[u32]| {
            let mut acc = AggState::from_value(order[0]);
            for &v in &order[1..] {
                acc.merge(&AggState::from_value(v));
            }
            acc
        };
        let forward = fold(&values);
        let mut reversed = values.clone();
        reversed.reverse();
        assert_eq!(forward, fold(&reversed));
        // Tree-shaped combination equals linear combination.
        if values.len() >= 2 {
            let mid = values.len() / 2;
            let mut left = fold(&values[..mid]);
            let right = fold(&values[mid..]);
            left.merge(&right);
            assert_eq!(forward, left);
        }
        assert_eq!(forward.count as usize, values.len());
        assert_eq!(
            forward.sum,
            values.iter().map(|&v| u64::from(v)).sum::<u64>()
        );
        assert_eq!(forward.min, *values.iter().min().unwrap());
        assert_eq!(forward.max, *values.iter().max().unwrap());
    }
}

/// Filters partition the stream: a filtered run plus the
/// complement-filtered run account for every record.
#[test]
fn filter_partitions_records() {
    use msa_core::{CmpOp, Filter};
    let mut rng = SplitMix64::new(0xA8);
    for _ in 0..60 {
        let records = record_batch(&mut rng);
        let threshold = rng.gen_u32_below(7);
        let keep = Filter::all().and(0, CmpOp::Lt, threshold);
        let drop = Filter::all().and(0, CmpOp::Ge, threshold);
        let kept = records.iter().filter(|r| keep.matches(r)).count();
        let dropped = records.iter().filter(|r| drop.matches(r)).count();
        assert_eq!(kept + dropped, records.len());
        // And the executor's filter metering agrees.
        let plan = PhysicalPlan::flat([(AttrSet::parse("A").unwrap(), 16)]);
        let mut ex =
            Executor::new(plan, CostParams::paper(), u64::MAX, 5).with_filter(keep.clone());
        ex.run(&records);
        assert_eq!(ex.report().filtered_out as usize, dropped);
    }
}

/// Trace encoding round-trips arbitrary records bit-exactly.
#[test]
fn trace_io_roundtrips() {
    use msa_stream::io::{decode_records, encode_records};
    let mut rng = SplitMix64::new(0xB9);
    for _ in 0..60 {
        let records = record_batch(&mut rng);
        let arity = 1 + rng.gen_index(4);
        // Zero out attributes beyond the declared arity (the format only
        // stores `arity` values per record).
        let narrowed: Vec<Record> = records
            .iter()
            .map(|r| {
                let mut attrs = [0u32; 8];
                attrs[..arity].copy_from_slice(&r.attrs[..arity]);
                Record {
                    attrs,
                    ts_micros: r.ts_micros,
                }
            })
            .collect();
        let mut buf = Vec::new();
        encode_records(&narrowed, arity, &mut buf);
        let (decoded, got_arity) = decode_records(&mut &buf[..]).unwrap();
        assert_eq!(got_arity, arity);
        assert_eq!(decoded, narrowed);
    }
}

/// The shard partitioner is a pure function of the root seed and the
/// record's grouping attributes: timestamps never influence placement,
/// equal attribute vectors always co-locate, and every assignment is
/// stable across calls and within range.
#[test]
fn partitioner_is_pure_in_seed_and_key() {
    use msa_core::shard_of;
    let mut rng = SplitMix64::new(0xC4A);
    for _ in 0..80 {
        let records = record_batch(&mut rng);
        let seed = rng.next_u64();
        let shards = 1 + rng.gen_index(8);
        let mut by_attrs: FastMap<[u32; 8], usize> = FastMap::default();
        for r in &records {
            let k = shard_of(seed, r, shards);
            assert!(k < shards, "assignment within range");
            // Stable across calls.
            assert_eq!(k, shard_of(seed, r, shards));
            // Timestamps are ignored.
            let shifted = Record {
                ts_micros: r.ts_micros.wrapping_add(rng.next_u64()),
                ..*r
            };
            assert_eq!(k, shard_of(seed, &shifted, shards));
            // Equal keys co-locate.
            match by_attrs.entry(r.attrs) {
                std::collections::hash_map::Entry::Occupied(e) => assert_eq!(*e.get(), k),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(k);
                }
            }
        }
        // A single shard degenerates to the identity placement.
        for r in &records {
            assert_eq!(shard_of(seed, r, 1), 0);
        }
    }
}

/// Chunked ingestion is pure batching: cutting a stream into chunks at
/// ANY set of boundaries — including cuts that straddle epoch flushes,
/// size-1 chunks and one giant chunk — produces outputs bit-identical
/// to offering every record individually.
#[test]
fn chunking_at_any_boundary_equals_per_record_offers() {
    use msa_core::{GuardPolicy, Ingest, RecordChunk};
    let mut rng = SplitMix64::new(0xC47);
    let s = |x: &str| AttrSet::parse(x).unwrap();
    let plan = || {
        PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("AB"),
                parent: None,
                buckets: 8,
                is_query: false,
            },
            PlanNode {
                attrs: s("A"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: Some(0),
                buckets: 4,
                is_query: true,
            },
        ])
        .unwrap()
    };
    for case in 0..40 {
        let records = record_batch(&mut rng);
        // Short epochs (timestamps are 0..n micros) so flushes land
        // inside chunks; sometimes arm the guard.
        let epoch = 1 + rng.next_u64() % 120;
        let guard_on = rng.next_u64().is_multiple_of(2);
        let build = || {
            let mut ex = Executor::new(plan(), CostParams::paper(), epoch, 11);
            if guard_on {
                ex = ex.with_guard(GuardPolicy::new(50.0));
            }
            ex
        };
        let mut oracle = build();
        oracle.run(&records);
        let (want_report, want_hfta) = oracle.finish();
        // Random cut points: each record independently ends a chunk.
        let mut chunked = build();
        let mut chunk = RecordChunk::new();
        for r in &records {
            chunk.push(r);
            if rng.next_u64().is_multiple_of(4) {
                chunked.offer_chunk(&chunk);
                chunk.clear();
            }
        }
        chunked.offer_chunk(&chunk);
        let (got_report, got_hfta) = chunked.finish();
        assert_eq!(got_report, want_report, "case {case}: report");
        assert_eq!(got_hfta.results(), want_hfta.results(), "case {case}");
        // The trait-object view agrees too (size-1 chunks ≡ offer).
        let mut unit = build();
        let ingest: &mut dyn Ingest = &mut unit;
        for r in &records {
            ingest.offer_chunk(&RecordChunk::from_records(std::slice::from_ref(r)));
        }
        let (unit_report, unit_hfta) = unit.finish();
        assert_eq!(unit_report, want_report, "case {case}: size-1 chunks");
        assert_eq!(unit_hfta.results(), want_hfta.results(), "case {case}");
    }
}

/// RecordChunk is a lossless columnar container: record round-trips,
/// split/append reconstruction at any midpoint, and the columnar
/// projection equals per-record projection for every lane and subset.
#[test]
fn record_chunk_split_concat_and_projection_roundtrip() {
    use msa_core::RecordChunk;
    let mut rng = SplitMix64::new(0xB3C);
    for _ in 0..80 {
        let records = record_batch(&mut rng);
        let chunk = RecordChunk::from_records(&records);
        assert_eq!(chunk.to_records(), records);
        // Split at a random midpoint, then append back: identity.
        let mid = rng.gen_index(chunk.len() + 1);
        let mut left = chunk.clone();
        let right = left.split_off(mid);
        assert_eq!(left.len(), mid);
        assert_eq!(right.len(), records.len() - mid);
        let mut rejoined = left;
        let mut tail = right;
        rejoined.append(&mut tail);
        assert!(tail.is_empty());
        assert_eq!(rejoined.to_records(), records);
        // Columnar projection over a random sub-range matches the
        // scalar per-record projection for a random attribute subset.
        let q = AttrSet::from_bits(1 + rng.gen_u32_below(15) as u16).unwrap();
        let from = rng.gen_index(records.len());
        let to = from + rng.gen_index(records.len() - from + 1);
        let mut keys = Vec::new();
        chunk.project_range(q, from, to, &mut keys);
        let want: Vec<GroupKey> = records[from..to].iter().map(|r| r.project(q)).collect();
        assert_eq!(keys, want, "subset {q} over {from}..{to}");
    }
}

/// Permuting the arrival order of a stream never changes the final
/// per-group counts of a sharded run — aggregation is
/// order-insensitive, so within one epoch any interleaving of the same
/// multiset of records yields the same totals (and they equal a naive
/// recount).
#[test]
fn shard_totals_are_arrival_order_invariant() {
    use msa_core::ShardedExecutor;
    let mut rng = SplitMix64::new(0xD5B);
    for _ in 0..20 {
        let queries = query_set(&mut rng);
        let mut records = record_batch(&mut rng);
        let shards = 1 + rng.gen_index(8);
        let seed = rng.next_u64();
        let plan = PhysicalPlan::flat(queries.iter().map(|&q| (q, 8)));
        let run = |records: &[Record]| {
            let mut sx =
                ShardedExecutor::new(plan.clone(), CostParams::paper(), u64::MAX, seed, shards)
                    .unwrap();
            sx.run(records);
            sx.finish()
        };
        let (_, baseline) = run(&records);
        // Fisher–Yates shuffle driven by the deterministic generator.
        for i in (1..records.len()).rev() {
            records.swap(i, rng.gen_index(i + 1));
        }
        let (_, shuffled) = run(&records);
        for &q in &queries {
            let want = exact(&records, q);
            assert_eq!(baseline.totals(q), want, "query {q} vs naive recount");
            assert_eq!(shuffled.totals(q), want, "query {q} after permutation");
        }
    }
}
