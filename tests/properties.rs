//! Property-based tests over the core data structures and invariants.

use msa_core::{AttrSet, Configuration, CostParams, Executor, LinearModel, Record};
use msa_gigascope::{PhysicalPlan, PlanNode};
use msa_optimizer::cost::{per_record_cost, CostContext};
use msa_optimizer::{AllocStrategy, FeedingGraph};
use msa_stream::hash::FastMap;
use msa_stream::{DatasetStats, GroupKey};
use proptest::prelude::*;

/// Strategy: a non-empty set of distinct non-empty attribute subsets
/// over 4 attributes.
fn query_sets() -> impl Strategy<Value = Vec<AttrSet>> {
    proptest::collection::btree_set(1u16..16, 1..5).prop_map(|bits| {
        bits.into_iter()
            .map(|b| AttrSet::from_bits(b).expect("within range"))
            .collect()
    })
}

/// Strategy: a batch of records over small domains (to force collisions).
fn record_batches() -> impl Strategy<Value = Vec<Record>> {
    proptest::collection::vec(
        (0u32..7, 0u32..5, 0u32..4, 0u32..3),
        1..400,
    )
    .prop_map(|tuples| {
        tuples
            .into_iter()
            .enumerate()
            .map(|(i, (a, b, c, d))| Record::new(&[a, b, c, d], i as u64))
            .collect()
    })
}

fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
    let mut m = FastMap::default();
    for r in records {
        *m.entry(r.project(q)).or_insert(0) += 1;
    }
    m
}

proptest! {
    /// The executor produces exact counts for ANY valid plan shape and
    /// ANY input batch — the fundamental correctness invariant.
    #[test]
    fn executor_is_exact_for_any_phantom_tree(records in record_batches(), buckets in 1usize..16) {
        let s = |x: &str| AttrSet::parse(x).unwrap();
        let plan = PhysicalPlan::new(vec![
            PlanNode { attrs: s("ABCD"), parent: None, buckets, is_query: false },
            PlanNode { attrs: s("ABC"), parent: Some(0), buckets, is_query: false },
            PlanNode { attrs: s("AB"), parent: Some(1), buckets, is_query: true },
            PlanNode { attrs: s("C"), parent: Some(1), buckets, is_query: true },
            PlanNode { attrs: s("D"), parent: Some(0), buckets, is_query: true },
        ]).unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 11);
        ex.run(&records);
        let (_, hfta) = ex.finish();
        for q in ["AB", "C", "D"] {
            prop_assert_eq!(hfta.totals(s(q)), exact(&records, s(q)));
        }
    }

    /// Feeding-graph candidates are unions of queries, strict supersets
    /// of at least two queries, and never queries themselves.
    #[test]
    fn feeding_graph_candidates_are_sound(queries in query_sets()) {
        let graph = FeedingGraph::new(&queries);
        for &p in graph.phantom_candidates() {
            prop_assert!(!queries.contains(&p));
            let covered = queries.iter().filter(|q| q.is_proper_subset_of(p)).count();
            prop_assert!(covered >= 2, "{p} covers {covered} queries");
            // p must be the union of the queries it covers... or a
            // union of some query subset: verify p is a union of queries.
            let union = queries
                .iter()
                .filter(|q| q.is_subset_of(p))
                .fold(AttrSet::EMPTY, |u, &q| u.union(q));
            prop_assert_eq!(union, p, "candidate {} is not a union of covered queries", p);
        }
    }

    /// Configurations derived from any phantom subset are forests:
    /// every non-raw relation's parent is a strict superset, queries
    /// are exactly the declared ones, and notation round-trips.
    #[test]
    fn configuration_tree_invariants(queries in query_sets(), mask in 0u64..64) {
        let graph = FeedingGraph::new(&queries);
        let phantoms: Vec<AttrSet> = graph
            .phantom_candidates()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let cfg = Configuration::with_phantoms(&queries, &phantoms);
        prop_assert_eq!(cfg.len(), queries.len() + phantoms.len());
        for r in cfg.relations() {
            if let Some(p) = cfg.parent(r) {
                prop_assert!(r.is_proper_subset_of(p));
                // Parent is minimal: no other instantiated relation
                // strictly between r and p.
                for other in cfg.relations() {
                    prop_assert!(
                        !(r.is_proper_subset_of(other) && other.is_proper_subset_of(p)),
                        "{} not minimal parent of {}: {} between", p, r, other
                    );
                }
            }
        }
        let round = Configuration::parse(&cfg.notation(), &queries).unwrap();
        prop_assert_eq!(round, cfg);
    }

    /// Every allocation strategy spends (approximately) the whole
    /// budget and gives every table at least one bucket.
    #[test]
    fn allocations_conserve_budget(
        queries in query_sets(),
        mask in 0u64..16,
        m in 2_000.0f64..50_000.0,
    ) {
        let graph = FeedingGraph::new(&queries);
        let phantoms: Vec<AttrSet> = graph
            .phantom_candidates()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let cfg = Configuration::with_phantoms(&queries, &phantoms);
        // Synthetic statistics: groups grow with arity.
        let stats = DatasetStats::from_group_counts(
            cfg.relations().map(|r| (r, 100 * r.len())),
            100_000,
        );
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        for strat in AllocStrategy::HEURISTICS {
            let alloc = strat.allocate(&cfg, m, &ctx);
            let spent = alloc.space_words();
            prop_assert!(
                (spent - m).abs() / m < 0.05,
                "{}: spent {spent} of {m}", strat.name()
            );
            for (r, b) in alloc.iter() {
                prop_assert!(b >= 1.0, "{}: {r} has {b} buckets", strat.name());
            }
        }
    }

    /// The numeric optimum never loses to any heuristic (convexity of
    /// the posynomial cost in log-space).
    #[test]
    fn numeric_allocation_dominates_heuristics(
        mask in 0u64..16,
        m in 4_000.0f64..40_000.0,
    ) {
        let s = |x: &str| AttrSet::parse(x).unwrap();
        let queries = vec![s("AB"), s("BC"), s("BD"), s("CD")];
        let graph = FeedingGraph::new(&queries);
        let phantoms: Vec<AttrSet> = graph
            .phantom_candidates()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &p)| p)
            .collect();
        let cfg = Configuration::with_phantoms(&queries, &phantoms);
        let stats = DatasetStats::from_group_counts(
            cfg.relations().map(|r| (r, 300 * r.len() * r.len())),
            100_000,
        );
        let model = LinearModel::paper_no_intercept();
        let ctx = CostContext::new(&stats, &model);
        let numeric = msa_optimizer::alloc::allocate_numeric(&cfg, m, &ctx, 150);
        let c_numeric = per_record_cost(&cfg, &numeric, &ctx);
        for strat in AllocStrategy::HEURISTICS {
            let a = strat.allocate(&cfg, m, &ctx);
            let c = per_record_cost(&cfg, &a, &ctx);
            prop_assert!(
                c_numeric <= c * 1.02,
                "{}: numeric {c_numeric} vs heuristic {c}", strat.name()
            );
        }
    }

    /// Collision models stay within [0, 1], increase with g, decrease
    /// with b, and the closed form equals the literal sum.
    #[test]
    fn collision_model_invariants(g in 1u64..5000, b in 1u64..5000) {
        use msa_collision::models;
        let x = models::precise(g, b);
        prop_assert!((0.0..=1.0).contains(&x));
        prop_assert!(models::precise(g + 100, b) >= x - 1e-12);
        prop_assert!(models::precise(g, b + 100) <= x + 1e-12);
        if b >= 2 {
            let sum = models::precise_sum(g, b);
            prop_assert!((x - sum).abs() < 1e-8, "g={g} b={b}: {x} vs {sum}");
        }
    }

    /// GroupKey projection/reprojection consistency for arbitrary
    /// records and attribute-set pairs.
    #[test]
    fn reprojection_commutes(
        attrs in proptest::array::uniform8(any::<u32>()),
        own_bits in 1u16..256,
        sub_bits in 0u16..256,
    ) {
        let own = AttrSet::from_bits(own_bits).unwrap();
        let target = AttrSet::from_bits(sub_bits & own_bits).unwrap();
        prop_assume!(!target.is_empty());
        let r = Record { attrs, ts_micros: 0 };
        prop_assert_eq!(r.project(own).reproject(own, target), r.project(target));
    }

    /// AggState merging is associative and commutative — the invariant
    /// that makes partial aggregates combine correctly no matter how
    /// evictions interleave along the cascade.
    #[test]
    fn agg_state_merge_is_order_insensitive(values in proptest::collection::vec(any::<u32>(), 1..40)) {
        use msa_gigascope::table::AggState;
        let fold = |order: &[u32]| {
            let mut acc = AggState::from_value(order[0]);
            for &v in &order[1..] {
                acc.merge(&AggState::from_value(v));
            }
            acc
        };
        let forward = fold(&values);
        let mut reversed = values.clone();
        reversed.reverse();
        prop_assert_eq!(forward, fold(&reversed));
        // Tree-shaped combination equals linear combination.
        if values.len() >= 2 {
            let mid = values.len() / 2;
            let mut left = fold(&values[..mid]);
            let right = fold(&values[mid..]);
            left.merge(&right);
            prop_assert_eq!(forward, left);
        }
        prop_assert_eq!(forward.count as usize, values.len());
        prop_assert_eq!(forward.sum, values.iter().map(|&v| u64::from(v)).sum::<u64>());
        prop_assert_eq!(forward.min, *values.iter().min().unwrap());
        prop_assert_eq!(forward.max, *values.iter().max().unwrap());
    }

    /// Filters partition the stream: a filtered run plus the
    /// complement-filtered run account for every record.
    #[test]
    fn filter_partitions_records(records in record_batches(), threshold in 0u32..7) {
        use msa_core::{CmpOp, Filter};
        let keep = Filter::all().and(0, CmpOp::Lt, threshold);
        let drop = Filter::all().and(0, CmpOp::Ge, threshold);
        let kept = records.iter().filter(|r| keep.matches(r)).count();
        let dropped = records.iter().filter(|r| drop.matches(r)).count();
        prop_assert_eq!(kept + dropped, records.len());
        // And the executor's filter metering agrees.
        let plan = PhysicalPlan::flat(&[(AttrSet::parse("A").unwrap(), 16)]).unwrap();
        let mut ex = Executor::new(plan, CostParams::paper(), u64::MAX, 5)
            .with_filter(keep.clone());
        ex.run(&records);
        prop_assert_eq!(ex.report().filtered_out as usize, dropped);
        let _ = kept;
    }

    /// Trace encoding round-trips arbitrary records bit-exactly.
    #[test]
    fn trace_io_roundtrips(records in record_batches(), arity in 1usize..5) {
        use msa_stream::io::{decode_records, encode_records};
        // Zero out attributes beyond the declared arity (the format
        // only stores `arity` values per record).
        let narrowed: Vec<Record> = records
            .iter()
            .map(|r| {
                let mut attrs = [0u32; 8];
                attrs[..arity].copy_from_slice(&r.attrs[..arity]);
                Record { attrs, ts_micros: r.ts_micros }
            })
            .collect();
        let mut buf = bytes::BytesMut::new();
        encode_records(&narrowed, arity, &mut buf);
        let (decoded, got_arity) = decode_records(&mut &buf[..]).unwrap();
        prop_assert_eq!(got_arity, arity);
        prop_assert_eq!(decoded, narrowed);
    }
}

