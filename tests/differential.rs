//! Differential battery: sharded execution versus the serial executor.
//!
//! The same seeded trace is replayed through the serial [`Executor`]
//! and through [`ShardedExecutor`] across the full deployment matrix
//! {shard counts} × {fault plans} × {guard on/off} × {crash points},
//! asserting at every cell:
//!
//! * **determinism** — two threaded sharded runs produce bit-identical
//!   [`RunReport`]s and result lists, whatever the scheduler did;
//! * **serial equivalence** — with one shard the sharded run is
//!   bit-identical to the serial executor; with lossless channels and
//!   no guard, any shard count reproduces the serial per-epoch result
//!   list exactly and every per-group total equals a naive recount;
//! * **bias identity** — under channel loss/duplication and guard
//!   shedding, `observed = records + count_bias(q)` holds exactly on
//!   both the serial and the merged sharded report, so bias-corrected
//!   totals agree with ground truth on both sides;
//! * **crash equivalence** — crash any one shard at any armed point,
//!   recover it from its snapshot + eviction log, and the merged
//!   outputs are bit-identical to the same deployment never crashing;
//! * **snapshot framing** — the deployment-wide [`ShardedSnapshot`]
//!   round-trips through its binary encoding.
//!
//! `MSA_SCALE` (0, 1] shrinks the trace and trims the matrix so CI can
//! run a reduced battery; unset means the full matrix.

use msa_core::{
    AttrSet, Burst, CostParams, CrashPlan, Executor, FaultPlan, GuardPolicy, Record, RunReport,
    ShardedExecutor, ShardedSnapshot,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_gigascope::Hfta;
use msa_stream::hash::FastMap;
use msa_stream::{GroupKey, UniformStreamBuilder};

const EPOCH: u64 = 500_000;
const SEED: u64 = 0xD1FF;
const GUARD_BUDGET: f64 = 3_000.0;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn scale() -> f64 {
    std::env::var("MSA_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 1.0)
}

fn shard_counts(scale: f64) -> Vec<usize> {
    if scale < 0.5 {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// AB phantom feeding A and B query tables.
fn phantom_plan() -> PhysicalPlan {
    PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: s("B"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])
    .unwrap()
}

fn stream(scale: f64) -> Vec<Record> {
    let records = ((6_000.0 * scale) as usize).max(800);
    UniformStreamBuilder::new(4, 120)
        .records(records)
        .duration_secs(6.0)
        .seed(SEED)
        .build()
        .records
}

/// The fault columns of the matrix: `(name, plan)`. `None` = no-fault.
fn fault_columns() -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("no-fault", None),
        (
            "loss",
            Some(FaultPlan::new(0xD1F1).with_eviction_loss(0.10)),
        ),
        (
            "duplication",
            Some(FaultPlan::new(0xD1F2).with_eviction_duplication(0.05)),
        ),
        (
            "burst",
            Some(FaultPlan::new(0xD1F3).with_burst(Burst {
                start_epoch: 2,
                epochs: 2,
                amplification: 3,
                fresh_groups: false,
            })),
        ),
    ]
}

/// True when the column leaves the eviction channel lossless (a burst
/// disturbs the stream, which both paths consume identically).
fn lossless(faults: &Option<FaultPlan>) -> bool {
    faults
        .as_ref()
        .is_none_or(|f| f.eviction_loss == 0.0 && f.eviction_duplication == 0.0)
}

/// The stream the executors actually see in this column.
fn disturbed(base: &[Record], faults: &Option<FaultPlan>) -> Vec<Record> {
    match faults {
        Some(f) => f.apply_to_stream(base, EPOCH),
        None => base.to_vec(),
    }
}

fn build_serial(faults: &Option<FaultPlan>, guard_on: bool) -> Executor {
    let mut ex = Executor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED);
    if let Some(f) = faults {
        ex = ex.with_faults(f);
    }
    if guard_on {
        ex = ex.with_guard(GuardPolicy::new(GUARD_BUDGET));
    }
    ex
}

fn build_sharded(
    n: usize,
    faults: &Option<FaultPlan>,
    guard_on: bool,
    durable: bool,
) -> ShardedExecutor {
    let mut sx = ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED, n).unwrap();
    if let Some(f) = faults {
        sx = sx.with_faults(f);
    }
    if guard_on {
        sx = sx.with_guard(GuardPolicy::new(GUARD_BUDGET));
    }
    if durable {
        sx = sx.with_durability();
    }
    sx
}

fn run_sharded(
    n: usize,
    faults: &Option<FaultPlan>,
    guard_on: bool,
    records: &[Record],
) -> (RunReport, Hfta) {
    let mut sx = build_sharded(n, faults, guard_on, false);
    sx.run(records);
    sx.finish()
}

fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
    let mut m = FastMap::default();
    for r in records {
        *m.entry(r.project(q)).or_insert(0) += 1;
    }
    m
}

/// `observed = records + count_bias(q)` must hold exactly; returns the
/// observed total for further comparison.
fn assert_bias_identity(label: &str, report: &RunReport, hfta: &Hfta, truth: usize) {
    for q in [s("A"), s("B")] {
        let observed: u64 = hfta.totals(q).values().sum();
        assert_eq!(
            observed as i64,
            truth as i64 + report.count_bias(q),
            "{label}: bias identity for query {q}"
        );
    }
}

/// The full no-crash matrix: {shards} × {faults} × {guard}.
#[test]
fn matrix_sharded_runs_are_deterministic_and_serial_equivalent() {
    let scale = scale();
    let base = stream(scale);
    for (fname, faults) in fault_columns() {
        let records = disturbed(&base, &faults);
        for guard_on in [false, true] {
            let mut serial = build_serial(&faults, guard_on);
            serial.run(&records);
            let (serial_report, serial_hfta) = serial.finish();
            assert_bias_identity(
                &format!("serial/{fname}/guard={guard_on}"),
                &serial_report,
                &serial_hfta,
                records.len(),
            );
            for &n in &shard_counts(scale) {
                let label = format!("{n} shards/{fname}/guard={guard_on}");
                let (r1, h1) = run_sharded(n, &faults, guard_on, &records);
                let (r2, h2) = run_sharded(n, &faults, guard_on, &records);
                // Determinism: thread scheduling never leaks into the
                // merged outputs.
                assert_eq!(r1, r2, "{label}: reports across two runs");
                assert_eq!(h1.results(), h2.results(), "{label}: results across runs");
                assert_eq!(r1.records, records.len() as u64, "{label}");
                // Bias identity holds on the merged report exactly as
                // on the serial one — bias-corrected totals therefore
                // agree with ground truth on both sides.
                assert_bias_identity(&label, &r1, &h1, records.len());
                if n == 1 {
                    // One shard: literal bit-identity with serial.
                    assert_eq!(r1, serial_report, "{label}: serial report");
                    assert_eq!(h1.results(), serial_hfta.results(), "{label}");
                }
                if lossless(&faults) && !guard_on {
                    // Lossless, guard off: the merged per-epoch result
                    // list equals serial exactly, and per-group totals
                    // equal a naive recount.
                    assert_eq!(h1.results(), serial_hfta.results(), "{label}: results");
                    for q in [s("A"), s("B")] {
                        assert_eq!(h1.totals(q), exact(&records, q), "{label}: query {q}");
                    }
                }
            }
        }
    }
}

/// The crash columns: {shards} × {faults} × {guard} × {crash points},
/// each recovered shard-locally and compared bit-for-bit against the
/// same deployment never crashing.
#[test]
fn matrix_crashed_shards_recover_to_no_crash_run() {
    let scale = scale();
    let base = stream(scale);
    let full_matrix = scale >= 0.5;
    for (fname, faults) in fault_columns() {
        let records = disturbed(&base, &faults);
        for guard_on in [false, true] {
            for &n in &shard_counts(scale) {
                // No-crash durable baseline for this cell.
                let mut baseline = build_sharded(n, &faults, guard_on, true);
                baseline.run(&records);
                let sharded_snap = baseline.durable_snapshot();
                let (want_report, want_hfta) = baseline.finish();
                // The deployment-wide checkpoint frames and round-trips.
                let snap = sharded_snap.expect("every shard checkpoints");
                assert_eq!(snap.shards.len(), n);
                assert_eq!(ShardedSnapshot::decode(&snap.encode()).unwrap(), snap);
                // Crash the last shard at each armed point; fuses count
                // shard-local positions.
                let crash_shard = n - 1;
                let probe = build_sharded(n, &faults, guard_on, true);
                let part_len = probe.partition(&records)[crash_shard].len() as u64;
                let mut crash_points = vec![
                    ("at-record-0", CrashPlan::at_record(0)),
                    ("mid-stream", CrashPlan::at_record(part_len / 2)),
                    ("after-offers", CrashPlan::after_offers(10)),
                ];
                if !full_matrix {
                    crash_points.truncate(2);
                }
                for (cname, crash) in crash_points {
                    let label = format!("{n} shards/{fname}/guard={guard_on}/{cname}");
                    let mut sx =
                        build_sharded(n, &faults, guard_on, true).with_crash(crash_shard, crash);
                    sx.run(&records);
                    assert_eq!(sx.crashed_shards(), vec![crash_shard], "{label}");
                    let (snapshot, log) = sx
                        .durable_state(crash_shard)
                        .expect("crash leaves durable artifacts");
                    sx.recover_shard(crash_shard, &snapshot, log, &records)
                        .expect("recovery succeeds");
                    assert!(sx.crashed_shards().is_empty(), "{label}");
                    let (got_report, got_hfta) = sx.finish();
                    assert_eq!(got_report, want_report, "{label}: merged report");
                    assert_eq!(got_hfta.results(), want_hfta.results(), "{label}: results");
                }
            }
        }
    }
}

/// Durability itself is transparent: a durable sharded run produces the
/// same merged outputs as a non-durable one.
#[test]
fn durability_does_not_change_results() {
    let scale = scale();
    let base = stream(scale);
    for &n in &shard_counts(scale) {
        let (plain_report, plain_hfta) = run_sharded(n, &None, false, &base);
        let mut durable = build_sharded(n, &None, false, true);
        durable.run(&base);
        let (durable_report, durable_hfta) = durable.finish();
        assert_eq!(plain_report, durable_report, "{n} shards");
        assert_eq!(plain_hfta.results(), durable_hfta.results(), "{n} shards");
    }
}
