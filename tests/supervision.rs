//! Supervision drill matrix: the self-healing shard runtime under
//! injected panics, stalls, and poison records.
//!
//! Every cell of {panic, stall, poison} × {shard counts} × {guard
//! on/off} must be:
//!
//! * **deterministic** — two threaded runs produce bit-identical
//!   merged [`RunReport`]s, result lists, and supervision outcomes,
//!   whatever the scheduler did;
//! * **replay-exact** — where the replay buffer covers the outage
//!   (transient panic, stuck shard), the run is bit-identical to the
//!   same deployment never faulting, except for the restart counter;
//! * **loss-exact** — where records are lost (poison quarantine,
//!   replay-buffer overrun, mid-epoch shutdown), the loss is typed and
//!   counted, and `observed = truth + count_bias(q)` holds exactly.
//!
//! `MSA_SCALE` (0, 1] shrinks the trace and trims the matrix as in the
//! differential battery.

use msa_core::{
    AttrSet, CostParams, CrashPlan, GuardPolicy, Record, RunReport, ShardFault, ShardState,
    ShardedExecutor, SupervisorPolicy,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_gigascope::Hfta;
use msa_stream::UniformStreamBuilder;

const EPOCH: u64 = 500_000;
const SEED: u64 = 0xD1FF;
const GUARD_BUDGET: f64 = 3_000.0;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn scale() -> f64 {
    std::env::var("MSA_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 1.0)
}

fn shard_counts(scale: f64) -> Vec<usize> {
    if scale < 0.5 {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// AB phantom feeding A and B query tables (the differential plan).
fn phantom_plan() -> PhysicalPlan {
    PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: s("B"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])
    .unwrap()
}

fn stream(scale: f64) -> Vec<Record> {
    let records = ((6_000.0 * scale) as usize).max(800);
    UniformStreamBuilder::new(4, 120)
        .records(records)
        .duration_secs(6.0)
        .seed(SEED)
        .build()
        .records
}

fn build(n: usize, guard_on: bool) -> ShardedExecutor {
    let mut sx = ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED, n).unwrap();
    if guard_on {
        sx = sx.with_guard(GuardPolicy::new(GUARD_BUDGET));
    }
    sx
}

/// One drilled run: arm `fault` on the last shard under `policy`, feed
/// the trace, and collect everything observable.
struct Drilled {
    report: RunReport,
    hfta: Hfta,
    health: msa_core::ShardHealth,
    final_state: ShardState,
}

fn drill(
    n: usize,
    guard_on: bool,
    fault: ShardFault,
    policy: SupervisorPolicy,
    records: &[Record],
) -> Drilled {
    let target = n - 1;
    let mut sx = build(n, guard_on)
        .with_shard_fault(target, fault)
        .with_supervision(policy);
    sx.run(records);
    let health = sx.shard_health(target).clone();
    let final_state = sx.heartbeat(target).state();
    let (report, hfta) = sx.finish();
    Drilled {
        report,
        hfta,
        health,
        final_state,
    }
}

/// `observed = truth + count_bias(q)` must hold exactly.
fn assert_bias_identity(label: &str, report: &RunReport, hfta: &Hfta, truth: usize) {
    for q in [s("A"), s("B")] {
        let observed: u64 = hfta.totals(q).values().sum();
        assert_eq!(
            observed as i64,
            truth as i64 + report.count_bias(q),
            "{label}: bias identity for query {q}"
        );
    }
}

/// Shard-local partition length of the drilled (last) shard.
fn part_len(n: usize, records: &[Record]) -> u64 {
    build(n, false).partition(records)[n - 1].len() as u64
}

/// The tentpole matrix: {panic, stall, poison} × {shards} × {guard}.
#[test]
fn drill_matrix_is_deterministic_and_replay_exact() {
    let scale = scale();
    let records = stream(scale);
    for guard_on in [false, true] {
        for &n in &shard_counts(scale) {
            // Fault-free run of the same deployment: the replay-exact
            // target (itself serial-equivalent per the differential
            // battery).
            let mut base = build(n, guard_on);
            base.run(&records);
            let (base_report, base_hfta) = base.finish();
            let len = part_len(n, &records);
            let drills: Vec<(&str, ShardFault, SupervisorPolicy)> = vec![
                (
                    "panic",
                    ShardFault::panic_at(len / 2),
                    SupervisorPolicy::default(),
                ),
                (
                    "stall",
                    ShardFault::stall_at(len / 3, 1 << 40),
                    SupervisorPolicy::default().with_stall_deadline(16),
                ),
                (
                    "poison",
                    ShardFault::panic_repeating(len / 2, 8),
                    SupervisorPolicy::default(),
                ),
            ];
            for (dname, fault, policy) in drills {
                let label = format!("{n} shards/{dname}/guard={guard_on}");
                let d1 = drill(n, guard_on, fault, policy, &records);
                let d2 = drill(n, guard_on, fault, policy, &records);
                // Determinism: supervision decisions are counted in
                // records, never wall-clock, so two runs agree bit for
                // bit — outcomes included.
                assert_eq!(d1.report, d2.report, "{label}: reports across runs");
                assert_eq!(
                    d1.hfta.results(),
                    d2.hfta.results(),
                    "{label}: results across runs"
                );
                assert_eq!(d1.health, d2.health, "{label}: health across runs");
                // The injected fault no longer aborts the deployment:
                // every record is accounted for and the shard retires
                // cleanly.
                assert_eq!(d1.report.records, records.len() as u64, "{label}");
                assert_eq!(d1.final_state, ShardState::Done, "{label}: heartbeat");
                assert_bias_identity(&label, &d1.report, &d1.hfta, records.len());
                match dname {
                    "panic" => {
                        // Transient: one kill, one restart, full replay.
                        assert_eq!(d1.health.panics_caught, 1, "{label}");
                        assert_eq!(d1.health.restarts, 1, "{label}");
                        assert_eq!(d1.health.stalls_detected, 0, "{label}");
                        assert!(d1.health.poisoned.is_empty(), "{label}");
                    }
                    "stall" => {
                        // The stuck deadline fires after 16 records of
                        // no progress; the restart swallows the wedge.
                        assert_eq!(d1.health.stalls_detected, 1, "{label}");
                        assert_eq!(d1.health.restarts, 1, "{label}");
                        assert_eq!(d1.health.panics_caught, 0, "{label}");
                    }
                    _ => {
                        // Poison: threshold consecutive kills, then
                        // quarantine — typed, indexed, never silent.
                        assert_eq!(d1.health.panics_caught, 3, "{label}");
                        assert_eq!(d1.health.restarts, 3, "{label}");
                        assert_eq!(d1.report.records_poisoned, 1, "{label}");
                        assert_eq!(d1.health.poisoned.len(), 1, "{label}");
                        let p = &d1.health.poisoned[0];
                        assert_eq!(p.shard, n - 1, "{label}");
                        assert_eq!(p.index, len / 2, "{label}");
                        assert_eq!(p.attempts, 3, "{label}");
                        assert_eq!(p.queries, vec![s("A"), s("B")], "{label}");
                    }
                }
                if dname != "poison" {
                    // Replay-exact: bit-identical to never faulting,
                    // except the restart counter itself.
                    assert_eq!(d1.health.records_unreplayed, 0, "{label}");
                    let mut scrubbed = d1.report.clone();
                    assert!(scrubbed.shard_restarts > 0, "{label}: restart counted");
                    scrubbed.shard_restarts = 0;
                    assert_eq!(scrubbed, base_report, "{label}: report vs fault-free");
                    assert_eq!(
                        d1.hfta.results(),
                        base_hfta.results(),
                        "{label}: results vs fault-free"
                    );
                }
            }
        }
    }
}

/// A stall shorter than the deadline resumes by itself: no restart, no
/// supervision noise, outputs bit-identical to never stalling.
#[test]
fn short_stall_resumes_without_restart() {
    let records = stream(scale());
    let n = 2;
    let len = part_len(n, &records);
    let mut base = build(n, false);
    base.run(&records);
    let (base_report, base_hfta) = base.finish();
    let d = drill(
        n,
        false,
        ShardFault::stall_at(len / 3, 8),
        SupervisorPolicy::default(),
        &records,
    );
    assert_eq!(d.health.stalls_detected, 0);
    assert_eq!(d.health.restarts, 0);
    assert_eq!(d.health.panics_caught, 0);
    assert_eq!(d.report, base_report);
    assert_eq!(d.hfta.results(), base_hfta.results());
}

/// Replay-buffer overrun: with a zero-capacity buffer the gap between
/// the last checkpoint and the kill point cannot be replayed. The gap
/// degrades explicitly — counted, shed, bias-exact — instead of
/// aborting or silently dropping.
#[test]
fn replay_overrun_degrades_explicitly_and_exactly() {
    let records = stream(scale());
    let n = 2;
    let len = part_len(n, &records);
    let policy = SupervisorPolicy::default().with_replay_capacity(0);
    let fault = ShardFault::panic_at(3 * len / 4);
    let d1 = drill(n, false, fault, policy, &records);
    let d2 = drill(n, false, fault, policy, &records);
    assert_eq!(
        d1.report, d2.report,
        "degraded runs are still deterministic"
    );
    assert_eq!(d1.hfta.results(), d2.hfta.results());
    assert_eq!(d1.health, d2.health);
    // The uncovered gap is real and every ledger agrees on its size.
    assert!(d1.health.records_unreplayed > 0, "gap must be nonzero");
    assert_eq!(d1.report.records_unreplayed, d1.health.records_unreplayed);
    assert!(d1.report.records_shed >= d1.health.records_unreplayed);
    assert_eq!(d1.report.records, records.len() as u64);
    assert_bias_identity("overrun", &d1.report, &d1.hfta, records.len());
}

/// Quarantine interacts with degradation: a poison record inside a
/// zero-capacity replay window still quarantines after the threshold,
/// and both loss ledgers stay exact side by side.
#[test]
fn poison_and_overrun_compose() {
    let records = stream(scale());
    let n = 4;
    let len = part_len(n, &records);
    let policy = SupervisorPolicy::default()
        .with_replay_capacity(0)
        .with_poison_threshold(2);
    let fault = ShardFault::panic_repeating(2 * len / 3, 5);
    let d = drill(n, false, fault, policy, &records);
    assert_eq!(d.health.panics_caught, 2);
    assert_eq!(d.health.poisoned.len(), 1);
    assert_eq!(d.report.records_poisoned, 1);
    assert_eq!(d.report.records, records.len() as u64);
    assert_bias_identity("poison+overrun", &d.report, &d.hfta, records.len());
}

/// Satellite regression: a shard killed mid-epoch by a [`CrashPlan`]
/// (a dead *process*, outside the supervisor's reach) loses its
/// in-flight feed at close. That loss must land in the shutdown ledger
/// and the abandoned deployment must still finish bias-exact — no
/// silent drops on the shutdown path.
#[test]
fn mid_epoch_close_accounts_shutdown_loss() {
    let records = stream(scale());
    let n = 4;
    let target = n - 1;
    let len = part_len(n, &records);
    let run_once = || {
        let mut sx = build(n, false)
            .with_durability()
            .with_crash(target, CrashPlan::at_record(len / 2));
        sx.run(&records);
        assert_eq!(sx.crashed_shards(), vec![target]);
        let stats = sx.channel_stats();
        let (report, hfta) = sx.finish();
        (stats, report, hfta)
    };
    let (stats1, report1, hfta1) = run_once();
    let (stats2, report2, hfta2) = run_once();
    assert_eq!(report1, report2, "abandoned runs are deterministic");
    assert_eq!(hfta1.results(), hfta2.results());
    assert_eq!(stats1, stats2);
    // The feed kept arriving after the kill; close() must have counted
    // every one of those records as shutdown loss, not dropped them.
    assert!(stats1.shutdown_lost > 0, "mid-epoch loss must be ledgered");
    assert_eq!(report1.records, records.len() as u64);
    assert_bias_identity("abandoned", &report1, &hfta1, records.len());
}

/// Heartbeats observe a live run without perturbing it: states stay in
/// the published vocabulary and the progress counter lands exactly on
/// the shard's partition size.
#[test]
fn heartbeats_report_progress_and_final_state() {
    let records = stream(scale());
    let n = 2;
    let mut sx = build(n, false);
    let hb = sx.heartbeat(0);
    assert_eq!(hb.state(), ShardState::Healthy);
    assert_eq!(hb.processed(), 0);
    sx.run(&records);
    let parts = sx.partition(&records);
    for (k, part) in parts.iter().enumerate() {
        let hb = sx.heartbeat(k);
        assert_eq!(hb.state(), ShardState::Done, "shard {k}");
        assert_eq!(hb.processed(), part.len() as u64, "shard {k}");
    }
    let (report, _) = sx.finish();
    assert_eq!(report.records, records.len() as u64);
    assert_eq!(report.shard_restarts, 0);
}

/// Satellite: a poison record arriving *inside a chunk* quarantines
/// exactly that one record. The chunked feed re-chunks per shard, the
/// supervisor drops to per-record replay around the armed fault, and
/// every ledger — quarantine index, replay counters, bias identity —
/// is bit-identical to the scalar feed's quarantine, at every chunk
/// size that places the poisoned lane somewhere different inside its
/// chunk.
#[test]
fn poison_inside_a_chunk_quarantines_exactly_one_record() {
    use msa_core::IngestMode;
    let records = stream(scale());
    let n = 4;
    let target = n - 1;
    let len = part_len(n, &records);
    let fault = ShardFault::panic_repeating(len / 2, 8);
    let policy = SupervisorPolicy::default();
    let scalar = drill(n, false, fault, policy, &records);
    for size in [7usize, 64, 1024] {
        let label = format!("chunk={size}");
        let run = || {
            let mut sx = build(n, false)
                .with_ingest(IngestMode::Chunked { size })
                .with_shard_fault(target, fault)
                .with_supervision(policy);
            sx.run(&records);
            let health = sx.shard_health(target).clone();
            let final_state = sx.heartbeat(target).state();
            let (report, hfta) = sx.finish();
            Drilled {
                report,
                hfta,
                health,
                final_state,
            }
        };
        let d1 = run();
        let d2 = run();
        assert_eq!(d1.report, d2.report, "{label}: determinism");
        assert_eq!(d1.hfta.results(), d2.hfta.results(), "{label}");
        assert_eq!(d1.health, d2.health, "{label}");
        // Bit-identical to the scalar-feed drill: the chunk boundary
        // around the poisoned lane leaks into nothing.
        assert_eq!(d1.report, scalar.report, "{label}: report vs scalar feed");
        assert_eq!(
            d1.hfta.results(),
            scalar.hfta.results(),
            "{label}: results vs scalar feed"
        );
        assert_eq!(d1.health, scalar.health, "{label}: health vs scalar feed");
        // Exactly one record quarantined, at the armed index; the rest
        // of its chunk replays.
        assert_eq!(d1.report.records_poisoned, 1, "{label}");
        assert_eq!(d1.health.poisoned.len(), 1, "{label}");
        assert_eq!(d1.health.poisoned[0].index, len / 2, "{label}");
        assert_eq!(d1.report.records, records.len() as u64, "{label}");
        assert_eq!(d1.final_state, ShardState::Done, "{label}");
        assert_bias_identity(&label, &d1.report, &d1.hfta, records.len());
    }
}
