//! Chaos suite: seeded fault injection and runtime overload, end to end.
//!
//! Three families of properties:
//!
//! 1. **Exact accounting** — for any injected channel faults and any
//!    shedding, the identity `observed = true + count_bias(q)` holds per
//!    query, and the report accounts every injected event.
//! 2. **No panics** — the executor and HFTA complete on disturbed
//!    streams (bursts, clock skew, loss, duplication, tiny tables).
//! 3. **Overload guard demo** — a burst 4× the planned rate breaches
//!    the budget; the degradation ladder caps the per-epoch cost within
//!    two epochs and the guard returns to level 0 after the burst.
//! 4. **Crash sweeps** — process deaths at the stream's start, middle,
//!    end and mid-flush, composed with channel loss/duplication, all
//!    recover bit-identically via the checkpoint + write-ahead log.

use msa_core::{
    AttrSet, Burst, CostParams, CrashPlan, EngineOptions, Executor, FaultPlan, GuardLevel,
    GuardPolicy, MultiAggregator, Record,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_stream::hash::FastMap;
use msa_stream::{GroupKey, PacketTraceBuilder, TraceProfile, UniformStreamBuilder};

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
    let mut m = FastMap::default();
    for r in records {
        *m.entry(r.project(q)).or_insert(0) += 1;
    }
    m
}

/// AB phantom feeding A and B query tables.
fn phantom_plan(parent_buckets: usize, child_buckets: usize) -> PhysicalPlan {
    PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: parent_buckets,
            is_query: false,
        },
        PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: child_buckets,
            is_query: true,
        },
        PlanNode {
            attrs: s("B"),
            parent: Some(0),
            buckets: child_buckets,
            is_query: true,
        },
    ])
    .unwrap()
}

/// The fig. 14 workload (four 2-attribute queries over the calibrated
/// packet trace) under 10 % eviction loss + 5 % duplication: the run
/// completes, every injected event is accounted, and per-query counts
/// match the reported bias exactly.
#[test]
fn fig14_chaos_faults_are_accounted_exactly() {
    let trace = PacketTraceBuilder::new(TraceProfile::paper_scaled(0.05))
        .seed(41)
        .build();
    let queries = vec![s("AB"), s("BC"), s("BD"), s("CD")];
    let mut opts = EngineOptions::new(3_000.0);
    opts.faults = Some(
        FaultPlan::new(0xC4A0_5EED)
            .with_eviction_loss(0.10)
            .with_eviction_duplication(0.05),
    );
    let mut engine = MultiAggregator::new(queries.clone(), opts);
    for r in &trace.records {
        engine.push(*r);
    }
    let out = engine.finish();
    assert_eq!(out.report.records as usize, trace.len());

    // The faults actually fired, and the totals account both sides.
    assert!(out.report.evictions_dropped > 0, "loss must fire at 10%");
    assert!(out.report.evictions_duplicated > 0, "dup must fire at 5%");
    let dropped_mass: u64 = out.report.dropped_records.iter().map(|(_, n)| n).sum();
    let duplicated_mass: u64 = out.report.duplicated_records.iter().map(|(_, n)| n).sum();
    assert!(dropped_mass >= out.report.evictions_dropped);
    assert!(duplicated_mass >= out.report.evictions_duplicated);
    // The per-epoch fault trace covers every channel event.
    let (trace_drops, trace_dups) = out
        .report
        .epoch_faults
        .iter()
        .fold((0, 0), |(d, u), &(_, dd, du)| (d + dd, u + du));
    assert_eq!(trace_drops, out.report.evictions_dropped);
    assert_eq!(trace_dups, out.report.evictions_duplicated);

    // Exact bias identity per query: observed = true + count_bias(q),
    // which also places every count inside the reported bounds.
    for q in &queries {
        let observed: u64 = out.totals(*q).values().sum();
        let truth = trace.len() as i64;
        assert_eq!(
            observed as i64,
            truth + out.report.count_bias(*q),
            "bias identity for query {q}"
        );
        let lower =
            truth - out.report.dropped_records_for(*q) as i64 - out.report.records_shed as i64;
        let upper = truth + out.report.duplicated_records_for(*q) as i64;
        assert!((lower..=upper).contains(&(observed as i64)));
    }
}

/// Burst + clock-skew disturbances change *which* stream the executor
/// sees, not its exactness: results must equal a naive recount of the
/// disturbed stream, and the plan replays deterministically.
#[test]
fn burst_and_skew_streams_stay_exact() {
    let stream = UniformStreamBuilder::new(4, 300)
        .records(30_000)
        .duration_secs(10.0)
        .seed(5)
        .build();
    let plan = FaultPlan::new(9)
        .with_burst(Burst {
            start_epoch: 3,
            epochs: 2,
            amplification: 3,
            fresh_groups: false,
        })
        .with_clock_skew(250_000);
    let disturbed = plan.apply_to_stream(&stream.records, 1_000_000);
    assert!(disturbed.len() > stream.records.len(), "burst amplified");
    assert_eq!(disturbed, plan.apply_to_stream(&stream.records, 1_000_000));

    let mut ex = Executor::new(phantom_plan(512, 256), CostParams::paper(), 1_000_000, 7);
    ex.run(&disturbed);
    let (report, hfta) = ex.finish();
    assert_eq!(report.records as usize, disturbed.len());
    for q in [s("A"), s("B")] {
        assert_eq!(hfta.totals(q), exact(&disturbed, q), "query {q}");
    }
}

/// Fresh-group bursts (DoS-style new flows) are also exact — the
/// synthetic groups are ordinary records as far as counting goes.
#[test]
fn fresh_group_burst_is_exact_and_raises_flush_cost() {
    let stream = UniformStreamBuilder::new(4, 100)
        .records(20_000)
        .duration_secs(10.0)
        .seed(6)
        .build();
    let plan = FaultPlan::new(12).with_burst(Burst {
        start_epoch: 4,
        epochs: 3,
        amplification: 4,
        fresh_groups: true,
    });
    let disturbed = plan.apply_to_stream(&stream.records, 1_000_000);

    let mut ex = Executor::new(phantom_plan(4096, 2048), CostParams::paper(), 1_000_000, 7);
    ex.run(&disturbed);
    let (report, hfta) = ex.finish();
    for q in [s("A"), s("B")] {
        assert_eq!(hfta.totals(q), exact(&disturbed, q), "query {q}");
    }
    // Group explosion: burst epochs must flush strictly more than calm
    // ones (that is what distinguishes fresh_groups from a rate burst).
    let flush_at = |e: u64| {
        report
            .epoch_costs
            .iter()
            .find(|(ep, _, _)| *ep == e)
            .map(|&(_, _, f)| f)
            .unwrap_or(0.0)
    };
    assert!(
        flush_at(5) > 2.0 * flush_at(1),
        "fresh groups must blow up the flush: {} vs {}",
        flush_at(5),
        flush_at(1)
    );
}

/// The fig. 15 scenario at runtime: a 4× rate burst mid-stream breaches
/// the peak budget; the guard sheds within two epochs, holds the
/// per-epoch cost within 10 % of `E_p`, and steps back to level 0
/// within three epochs of the burst ending.
#[test]
fn overload_guard_demo_caps_cost_and_recovers() {
    let stream = UniformStreamBuilder::new(4, 50)
        .records(60_000)
        .duration_secs(15.0)
        .seed(3)
        .build();
    let epoch_micros = 1_000_000;

    // Baseline: unguarded run on the organic stream fixes the planned
    // per-epoch cost.
    let mut base = Executor::new(phantom_plan(128, 64), CostParams::paper(), epoch_micros, 7);
    base.run(&stream.records);
    let (base_report, _) = base.finish();
    let planned: f64 = base_report
        .epoch_costs
        .iter()
        .map(|&(_, i, f)| i + f)
        .fold(0.0, f64::max);
    assert!(planned > 0.0);
    // A 4x rate burst of *replicated* records multiplies only the
    // raw-probe term (copies are streak hits on occupied buckets), so
    // the headroom is deliberately modest.
    let e_p = 1.25 * planned;

    // The burst: 4× the planned rate for epochs 6..10.
    let burst_start = 6;
    let burst_epochs = 4;
    let burst_end = burst_start + burst_epochs; // first calm epoch
    let faults = FaultPlan::new(17).with_burst(Burst {
        start_epoch: burst_start,
        epochs: burst_epochs,
        amplification: 4,
        fresh_groups: false,
    });
    let disturbed = faults.apply_to_stream(&stream.records, epoch_micros);

    // recover_ratio splits "burst but shedding" (~planned, hold) from
    // "burst over, still shedding" (~planned/4, calm, step down).
    let mut policy = GuardPolicy::new(e_p);
    policy.recover_ratio = 0.6;
    policy.shed_factor = 4;
    let mut ex = Executor::new(phantom_plan(128, 64), CostParams::paper(), epoch_micros, 7)
        .with_guard(policy);
    ex.run(&disturbed);
    let (report, _, guard) = ex.finish_parts();
    let guard = guard.expect("guard configured");

    // The burst breached: the first transition leaves Normal inside the
    // burst window. (Transition epochs are 1-based flush counts; the
    // 0-based epoch whose flush triggered it is `epoch - 1`.)
    let first = report.guard_transitions.first().expect("burst must breach");
    assert_eq!(first.from, GuardLevel::Normal);
    let breach = first.epoch - 1;
    assert!(
        (burst_start..burst_end).contains(&breach),
        "breach at epoch {breach}, burst {burst_start}..{burst_end}"
    );

    // Within two epochs of the breach, per-epoch cost is back within
    // 10% of E_p, and stays there until the burst ends.
    for &(epoch, intra, flush) in &report.epoch_costs {
        if epoch >= breach + 2 && epoch < burst_end {
            assert!(
                intra + flush <= 1.1 * e_p,
                "epoch {epoch}: cost {} exceeds 1.1 x E_p = {}",
                intra + flush,
                1.1 * e_p
            );
        }
    }
    assert!(report.epochs_degraded > 0);
    assert!(report.records_shed > 0, "the ladder must have shed");

    // Recovery: back to level 0 within three epochs of the burst end.
    let last = report.guard_transitions.last().unwrap();
    assert_eq!(last.to, GuardLevel::Normal, "guard must fully recover");
    assert!(
        last.epoch - 1 <= burst_end + 3,
        "recovered at epoch {}, burst ended at {burst_end}",
        last.epoch - 1
    );
    assert_eq!(guard.level(), GuardLevel::Normal);

    // Degradation is accounted: shedding undercounts every query by
    // exactly records_shed.
    assert_eq!(report.count_bias(s("A")), -(report.records_shed as i64));
}

/// Engine-level overload: the guard escalates to Repair, the engine
/// applies an incremental shrink (repairs ≥ 1), and the merged report
/// still satisfies the bias identity across executor swaps.
#[test]
fn engine_applies_guard_repair_and_stays_accounted() {
    let stream = UniformStreamBuilder::new(4, 200)
        .records(60_000)
        .duration_secs(12.0)
        .seed(8)
        .build();
    let queries = vec![s("AB"), s("BC")];
    let mut opts = EngineOptions::new(4_000.0);
    opts.epoch_micros = 1_000_000;
    opts.bootstrap_records = 5_000;
    opts.retain_results = true;
    // A budget low enough that the organic load breaches repeatedly:
    // the ladder runs through shed → phantoms-off → repair.
    opts.guard = Some(GuardPolicy::new(1.0));
    let mut engine = MultiAggregator::new(queries.clone(), opts);
    for r in &stream.records {
        engine.push(*r);
    }
    let out = engine.finish();

    assert!(out.repairs >= 1, "guard must trigger at least one repair");
    assert!(out.report.records_shed > 0);
    assert!(out.report.epochs_degraded > 0);
    assert!(!out.report.guard_transitions.is_empty());
    assert_eq!(out.report.records as usize, stream.records.len());
    for q in &queries {
        let observed: u64 = out.totals(*q).values().sum();
        assert_eq!(
            observed as i64,
            stream.records.len() as i64 + out.report.count_bias(*q),
            "bias identity across repairs for query {q}"
        );
    }
}

/// Crash sweep composed with channel chaos: kill the pipeline at 0 %,
/// 50 %, mid-flush and the last record of a lossy, duplicating run;
/// every recovery lands bit-identical to the crash-free run, so the
/// count-bias bounds of the fault suite carry over unchanged.
#[test]
fn crash_sweep_composed_with_channel_faults_recovers_exactly() {
    let stream = UniformStreamBuilder::new(4, 150)
        .records(12_000)
        .duration_secs(6.0)
        .seed(31)
        .build();
    let faults = FaultPlan::new(0xDEAD)
        .with_eviction_loss(0.10)
        .with_eviction_duplication(0.05);
    let build = || {
        Executor::new(phantom_plan(64, 32), CostParams::paper(), 1_000_000, 9).with_faults(&faults)
    };

    // Crash-free reference.
    let mut base = build();
    base.run(&stream.records);
    let (base_report, base_hfta) = base.finish();
    assert!(base_report.evictions_dropped > 0);
    assert!(base_report.evictions_duplicated > 0);
    let total_offers = base_report.intra_evictions + base_report.flush_evictions;

    // A provably mid-flush offer index: one offer into the first
    // end-of-epoch scan that makes at least two.
    let mid_flush = {
        let mut probe = build();
        let mut found = None;
        let (mut prev_offers, mut prev_flush, mut prev_epochs) = (0u64, 0u64, 0u64);
        for r in &stream.records {
            probe.process(r);
            let rep = probe.report();
            if rep.epochs > prev_epochs && rep.flush_evictions - prev_flush >= 2 {
                found = Some(prev_offers + 1);
                break;
            }
            prev_epochs = rep.epochs;
            prev_flush = rep.flush_evictions;
            prev_offers = rep.intra_evictions + rep.flush_evictions;
        }
        found.expect("workload must have a multi-eviction flush")
    };

    let n = stream.records.len() as u64;
    let crashes = [
        (CrashPlan::at_record(0), "0%"),
        (CrashPlan::at_record(n / 2), "50%"),
        (CrashPlan::after_offers(mid_flush), "mid-flush"),
        (CrashPlan::at_record(n - 1), "last record"),
        (CrashPlan::after_offers(total_offers - 1), "final flush"),
    ];
    for (crash, what) in crashes {
        let mut crashed = build()
            .with_eviction_log()
            .with_snapshots()
            .with_crash(crash);
        crashed.run(&stream.records);
        if !crashed.has_crashed() {
            crashed.flush_epoch();
        }
        assert!(crashed.has_crashed(), "fuse at {what} must fire");
        let (snap, log) = crashed.durable_state().expect("durable artifacts");

        let mut ex = build()
            .recover(&snap, log)
            .unwrap_or_else(|e| panic!("recovery at {what}: {e}"));
        ex.run(&stream.records[snap.records_hwm as usize..]);
        let (report, hfta) = ex.finish();
        assert_eq!(report, base_report, "report diverged at {what}");
        for q in [s("A"), s("B")] {
            assert_eq!(
                hfta.totals(q),
                base_hfta.totals(q),
                "totals for {q} diverged at {what}"
            );
            // The chaos suite's bias identity survives the crash.
            let observed: u64 = hfta.totals(q).values().sum();
            assert_eq!(
                observed as i64,
                stream.records.len() as i64 + report.count_bias(q),
                "bias identity at {what} for {q}"
            );
        }
    }
}

/// A pathologically small plan (one-bucket tables) under every fault at
/// once: the pipeline must not panic and must stay exactly accounted.
#[test]
fn tiny_tables_under_full_fault_plan_do_not_panic() {
    let stream = UniformStreamBuilder::new(4, 500)
        .records(5_000)
        .duration_secs(5.0)
        .seed(13)
        .build();
    let faults = FaultPlan::new(99)
        .with_eviction_loss(0.3)
        .with_eviction_duplication(0.3)
        .with_burst(Burst {
            start_epoch: 1,
            epochs: 2,
            amplification: 5,
            fresh_groups: true,
        })
        .with_clock_skew(-750_000);
    let disturbed = faults.apply_to_stream(&stream.records, 1_000_000);
    let mut ex = Executor::new(phantom_plan(1, 1), CostParams::paper(), 1_000_000, 21)
        .with_faults(&faults)
        .with_guard(GuardPolicy::new(0.0));
    ex.run(&disturbed);
    let (report, hfta) = ex.finish();
    assert_eq!(report.records as usize, disturbed.len());
    for q in [s("A"), s("B")] {
        let observed: u64 = hfta.totals(q).values().sum();
        assert_eq!(
            observed as i64,
            disturbed.len() as i64 + report.count_bias(q),
            "bias identity under combined faults for {q}"
        );
    }
}

/// Determinism smoke for the panic-free refactor: the same seeded chaos
/// pipeline, built twice from scratch, yields bit-identical
/// [`RunReport`]s and query results. The trace generator's seeded sets,
/// the planner's ordered statistics maps and the fault PRNGs are all on
/// this path, so any reintroduced run-to-run variance (msa-lint
/// D001/D002 territory) trips here before it reaches the recovery
/// proofs.
#[test]
fn identical_seeds_produce_identical_run_reports() {
    let run = || {
        let trace = PacketTraceBuilder::new(TraceProfile::paper_scaled(0.05))
            .seed(77)
            .build();
        let faults = FaultPlan::new(0xFEED_FACE)
            .with_eviction_loss(0.08)
            .with_eviction_duplication(0.04);
        let mut ex = Executor::new(phantom_plan(64, 32), CostParams::paper(), 1_000_000, 5)
            .with_faults(&faults)
            .with_eviction_log()
            .with_snapshots();
        ex.run(&trace.records);
        ex.finish()
    };
    let (report_a, hfta_a) = run();
    let (report_b, hfta_b) = run();
    assert_eq!(report_a, report_b, "RunReport must be bit-identical");
    assert_eq!(hfta_a.results(), hfta_b.results());
    assert!(report_a.records > 0);
}

/// Sharded determinism sweep: across 20 root seeds, a threaded 4-shard
/// chaos run (channel loss + duplication + guard) built twice from
/// scratch yields bit-identical merged [`RunReport`]s and result lists
/// — whatever the OS scheduler did to the shard threads — and its
/// bias-corrected per-query totals match the serial executor's on the
/// same stream. Probe/eviction cost counters legitimately differ from
/// serial (each shard hashes into a smaller table with its own derived
/// seed), so equivalence is asserted on counts, not costs.
#[test]
fn sharded_chaos_runs_are_deterministic_across_seeds() {
    use msa_core::ShardedExecutor;
    for seed in 0..20u64 {
        let records = UniformStreamBuilder::new(4, 90)
            .records(1_500)
            .duration_secs(3.0)
            .seed(seed ^ 0xC0A5)
            .build()
            .records;
        let faults = FaultPlan::new(seed.wrapping_mul(0x9E37))
            .with_eviction_loss(0.06)
            .with_eviction_duplication(0.03);
        let sharded = || {
            let mut sx = ShardedExecutor::new(
                phantom_plan(64, 16),
                CostParams::paper(),
                1_000_000,
                seed,
                4,
            )
            .unwrap()
            .with_faults(&faults)
            .with_guard(GuardPolicy::new(4_000.0));
            sx.run(&records);
            sx.finish()
        };
        let (report_a, hfta_a) = sharded();
        let (report_b, hfta_b) = sharded();
        assert_eq!(report_a, report_b, "seed {seed}: merged report");
        assert_eq!(hfta_a.results(), hfta_b.results(), "seed {seed}: results");
        let mut serial = Executor::new(phantom_plan(64, 16), CostParams::paper(), 1_000_000, seed)
            .with_faults(&faults)
            .with_guard(GuardPolicy::new(4_000.0));
        serial.run(&records);
        let (serial_report, serial_hfta) = serial.finish();
        assert_eq!(report_a.records, serial_report.records, "seed {seed}");
        for q in [s("A"), s("B")] {
            let sharded_total: u64 = hfta_a.totals(q).values().sum();
            let serial_total: u64 = serial_hfta.totals(q).values().sum();
            // Both paths are exact after correcting their own bias.
            assert_eq!(
                sharded_total as i64 - report_a.count_bias(q),
                records.len() as i64,
                "seed {seed}: sharded bias-corrected total for {q}"
            );
            assert_eq!(
                serial_total as i64 - serial_report.count_bias(q),
                records.len() as i64,
                "seed {seed}: serial bias-corrected total for {q}"
            );
        }
    }
}

/// Lossless sharded chaos (burst + clock skew, no channel faults): the
/// merged totals equal both a naive recount and the serial executor's
/// totals, for every seed.
#[test]
fn sharded_lossless_chaos_matches_serial_totals() {
    use msa_core::ShardedExecutor;
    for seed in 0..20u64 {
        let base = UniformStreamBuilder::new(4, 60)
            .records(1_200)
            .duration_secs(3.0)
            .seed(seed ^ 0xB00)
            .build()
            .records;
        let disturb = FaultPlan::new(seed)
            .with_burst(Burst {
                start_epoch: 1,
                epochs: 1,
                amplification: 3,
                fresh_groups: seed % 2 == 0,
            })
            .with_clock_skew(150_000);
        let records = disturb.apply_to_stream(&base, 1_000_000);
        let mut sx =
            ShardedExecutor::new(phantom_plan(32, 8), CostParams::paper(), 1_000_000, seed, 3)
                .unwrap();
        sx.run(&records);
        let (_, hfta) = sx.finish();
        let mut serial = Executor::new(phantom_plan(32, 8), CostParams::paper(), 1_000_000, seed);
        serial.run(&records);
        let (_, serial_hfta) = serial.finish();
        for q in [s("A"), s("B")] {
            let want = exact(&records, q);
            assert_eq!(hfta.totals(q), want, "seed {seed}: query {q}");
            assert_eq!(serial_hfta.totals(q), want, "seed {seed}: serial {q}");
        }
    }
}
