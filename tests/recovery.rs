//! Crash-recovery suite: epoch-aligned checkpoints + write-ahead
//! eviction log give exactly-once replay.
//!
//! The headline invariant: for **any** seed and **any** crash point —
//! between records, between epochs, or in the middle of an end-of-epoch
//! flush — a crashed-and-recovered run produces bit-identical per-query
//! results and a bit-identical [`RunReport`] to a run that never
//! crashed. Composed with channel loss/duplication faults the same
//! holds, because the checkpoint carries the channel's PRNG cursor.
//!
//! Alongside the sweep: snapshot/log round-trips through their binary
//! encodings, corruption rejection with typed errors, and the typed
//! refusal paths of the recovery driver (plan mismatch, log gaps,
//! epoch mismatches, misaligned captures).

use msa_core::{
    AttrSet, CostParams, CrashPlan, EvictionLog, Executor, FaultPlan, GuardPolicy, Record,
    RecoveryError, RunReport, Snapshot, SnapshotError,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_gigascope::snapshot::LogEntry;
use msa_gigascope::Hfta;
use msa_stream::UniformStreamBuilder;

const EPOCH: u64 = 1_000_000;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

/// AB phantom feeding A and B query tables — evictions on every path.
fn phantom_plan() -> PhysicalPlan {
    PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: s("B"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])
    .unwrap()
}

fn stream(seed: u64) -> Vec<Record> {
    UniformStreamBuilder::new(4, 120)
        .records(6_000)
        .duration_secs(6.0)
        .seed(seed)
        .build()
        .records
}

fn executor(seed: u64) -> Executor {
    Executor::new(phantom_plan(), CostParams::paper(), EPOCH, seed)
}

/// Fault-free reference: the run that never crashes.
fn baseline(seed: u64, faults: Option<&FaultPlan>, records: &[Record]) -> (RunReport, Hfta) {
    let mut ex = executor(seed);
    if let Some(f) = faults {
        ex = ex.with_faults(f);
    }
    ex.run(records);
    ex.finish()
}

/// Runs `ex` into its armed crash and returns the durable artifacts the
/// "dead process" leaves behind (the harness flushes explicitly so
/// fuses aimed at the final flush are reachable too).
fn run_to_crash(mut ex: Executor, records: &[Record]) -> (Snapshot, EvictionLog) {
    ex.run(records);
    if !ex.has_crashed() {
        ex.flush_epoch();
    }
    assert!(ex.has_crashed(), "crash fuse must fire for this sweep");
    ex.durable_state().expect("genesis snapshot always exists")
}

/// Crash → recover → resume → compare bit-for-bit against `base`.
fn recover_and_compare(
    seed: u64,
    faults: Option<&FaultPlan>,
    records: &[Record],
    crash: CrashPlan,
    base: &(RunReport, Hfta),
    label: &str,
) {
    let mut crashed = executor(seed)
        .with_eviction_log()
        .with_snapshots()
        .with_crash(crash);
    if let Some(f) = faults {
        crashed = crashed.with_faults(f);
    }
    let (snap, log) = run_to_crash(crashed, records);

    let recovered = executor(seed)
        .recover(&snap, log)
        .unwrap_or_else(|e| panic!("{label}: recovery refused: {e}"));
    let mut ex = recovered;
    ex.run(&records[snap.records_hwm as usize..]);
    let (report, hfta) = ex.finish();

    assert_eq!(report, base.0, "{label}: RunReport must be bit-identical");
    assert_eq!(
        hfta.results(),
        base.1.results(),
        "{label}: per-epoch results must be bit-identical"
    );
    for q in [s("A"), s("B")] {
        assert_eq!(hfta.totals(q), base.1.totals(q), "{label}: totals for {q}");
    }
}

/// The first crash point that is provably *mid-flush*: one eviction
/// offer into an end-of-epoch scan that makes at least two.
fn mid_flush_offer(seed: u64, faults: Option<&FaultPlan>, records: &[Record]) -> Option<u64> {
    let mut ex = executor(seed);
    if let Some(f) = faults {
        ex = ex.with_faults(f);
    }
    let mut prev_offers = 0u64;
    let mut prev_flush = 0u64;
    let mut prev_epochs = 0u64;
    for r in records {
        ex.process(r);
        let rep = ex.report();
        if rep.epochs > prev_epochs && rep.flush_evictions - prev_flush >= 2 {
            return Some(prev_offers + 1);
        }
        prev_epochs = rep.epochs;
        prev_flush = rep.flush_evictions;
        prev_offers = rep.intra_evictions + rep.flush_evictions;
    }
    None
}

/// The headline sweep: ≥ 20 seeds × ≥ 4 crash positions (first record,
/// 25 % / 50 % / 75 % of the stream, provably mid-flush, last record,
/// and inside the final flush), every combination bit-identical to the
/// fault-free run.
#[test]
fn any_seed_any_crash_point_recovers_bit_identical() {
    for seed in 0..20u64 {
        let records = stream(seed);
        let base = baseline(seed, None, &records);
        let n = records.len() as u64;
        let total_offers = base.0.intra_evictions + base.0.flush_evictions;
        assert!(total_offers > 10, "seed {seed}: workload must evict");

        let mut crashes = vec![
            (CrashPlan::at_record(0), "record 0".to_string()),
            (CrashPlan::at_record(n / 4), "record 25%".to_string()),
            (CrashPlan::at_record(n / 2), "record 50%".to_string()),
            (CrashPlan::at_record(3 * n / 4), "record 75%".to_string()),
            (CrashPlan::at_record(n - 1), "last record".to_string()),
            (
                CrashPlan::after_offers(total_offers - 1),
                "final flush".to_string(),
            ),
        ];
        if let Some(offers) = mid_flush_offer(seed, None, &records) {
            crashes.push((CrashPlan::after_offers(offers), "mid-flush".to_string()));
        }
        for (crash, what) in crashes {
            recover_and_compare(
                seed,
                None,
                &records,
                crash,
                &base,
                &format!("seed {seed}, crash at {what}"),
            );
        }
    }
}

/// Composed with PR 1's channel faults: the checkpoint carries the
/// channel's PRNG cursor, so the recovered run re-draws the identical
/// loss/duplication decisions — bit-identical reports (and therefore
/// the same count-bias bounds) survive crashes too.
#[test]
fn crash_recovery_composes_with_channel_faults() {
    for seed in [3u64, 7, 11, 19, 23] {
        let records = stream(seed);
        let faults = FaultPlan::new(seed ^ 0xFA_17)
            .with_eviction_loss(0.10)
            .with_eviction_duplication(0.05);
        let base = baseline(seed, Some(&faults), &records);
        assert!(base.0.evictions_dropped > 0, "seed {seed}: loss must fire");
        assert!(
            base.0.evictions_duplicated > 0,
            "seed {seed}: dup must fire"
        );

        let n = records.len() as u64;
        let mut crashes = vec![
            (CrashPlan::at_record(n / 3), "record 33%".to_string()),
            (CrashPlan::at_record(2 * n / 3), "record 66%".to_string()),
        ];
        if let Some(offers) = mid_flush_offer(seed, Some(&faults), &records) {
            crashes.push((CrashPlan::after_offers(offers), "mid-flush".to_string()));
        }
        for (crash, what) in crashes {
            recover_and_compare(
                seed,
                Some(&faults),
                &records,
                crash,
                &base,
                &format!("faulty seed {seed}, crash at {what}"),
            );
        }
        // And the bias identity still reconciles the observed counts.
        for q in [s("A"), s("B")] {
            let observed: u64 = base.1.totals(q).values().sum();
            assert_eq!(
                observed as i64,
                records.len() as i64 + base.0.count_bias(q),
                "bias identity for {q}"
            );
        }
    }
}

/// The guard's shed cursor is part of the checkpoint: a crashed-and-
/// recovered overloaded run sheds the identical records.
#[test]
fn crash_recovery_preserves_overload_guard_state() {
    let seed = 5u64;
    let records = stream(seed);
    let build = || executor(seed).with_guard(GuardPolicy::new(400.0));
    let mut base_ex = build();
    base_ex.run(&records);
    let base = base_ex.finish();
    assert!(base.0.records_shed > 0, "budget must force shedding");
    assert!(!base.0.guard_transitions.is_empty());

    for at in [1_000u64, 2_500, 4_999] {
        let crashed = build()
            .with_eviction_log()
            .with_snapshots()
            .with_crash(CrashPlan::at_record(at));
        let (snap, log) = run_to_crash(crashed, &records);
        assert!(snap.guard.is_some(), "guard state must be captured");
        let mut ex = build().recover(&snap, log).expect("recovery");
        ex.run(&records[snap.records_hwm as usize..]);
        let (report, hfta) = ex.finish();
        assert_eq!(report, base.0, "crash at record {at}");
        assert_eq!(hfta.results(), base.1.results());
    }
}

/// Satellite: determinism regression — two same-seed runs produce
/// identical reports and identical per-epoch results (the property the
/// whole recovery design rests on).
#[test]
fn same_seed_runs_are_bit_identical() {
    for seed in [0u64, 9, 42] {
        let records = stream(seed);
        let run = || {
            let faults = FaultPlan::new(seed)
                .with_eviction_loss(0.05)
                .with_eviction_duplication(0.02);
            let mut ex = executor(seed).with_faults(&faults);
            ex.run(&records);
            ex.finish()
        };
        let (report_a, hfta_a) = run();
        let (report_b, hfta_b) = run();
        assert_eq!(report_a, report_b, "seed {seed}: reports diverged");
        assert_eq!(
            hfta_a.results(),
            hfta_b.results(),
            "seed {seed}: results diverged"
        );
    }
}

/// The durable artifacts survive their binary encodings losslessly, and
/// recovery from the decoded bytes is as good as from the originals.
#[test]
fn recovery_works_through_the_binary_encoding() {
    let seed = 13u64;
    let records = stream(seed);
    let base = baseline(seed, None, &records);
    let crashed = executor(seed)
        .with_eviction_log()
        .with_snapshots()
        .with_crash(CrashPlan::at_record(records.len() as u64 / 2));
    let (snap, log) = run_to_crash(crashed, &records);

    // Round-trip both artifacts through bytes.
    let snap2 = Snapshot::decode(&snap.encode()).expect("snapshot round-trip");
    let log2 = EvictionLog::decode(&log.encode()).expect("log round-trip");
    assert_eq!(snap2, snap);
    assert_eq!(log2, log);

    let mut ex = executor(seed).recover(&snap2, log2).expect("recovery");
    ex.run(&records[snap2.records_hwm as usize..]);
    let (report, hfta) = ex.finish();
    assert_eq!(report, base.0);
    assert_eq!(hfta.results(), base.1.results());
}

/// Corrupted artifacts decode to typed errors, never to garbage state.
#[test]
fn corrupted_artifacts_are_rejected() {
    let seed = 17u64;
    let records = stream(seed);
    let crashed = executor(seed)
        .with_eviction_log()
        .with_snapshots()
        .with_crash(CrashPlan::at_record(3_000));
    let (snap, log) = run_to_crash(crashed, &records);

    let mut bytes = snap.encode();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    assert!(matches!(
        Snapshot::decode(&bytes),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
    let good = snap.encode();
    assert!(matches!(
        Snapshot::decode(&good[..good.len() - 2]),
        Err(SnapshotError::Truncated)
    ));

    if !log.is_empty() {
        let mut lb = log.encode();
        let last = lb.len() - 1;
        lb[last] ^= 0x01;
        assert!(matches!(
            EvictionLog::decode(&lb),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }
}

/// The adversarial sweep behind [`corrupted_artifacts_are_rejected`]:
/// for 20 seeds, truncate both durable artifacts at a spread of lengths
/// and flip single bits across a spread of positions. Every mutation
/// must decode to a typed [`SnapshotError`] — never to `Ok` garbage and
/// never to a panic (a panic in `decode` fails this test by itself,
/// which is exactly the supervised-restart property: corrupt artifacts
/// downgrade recovery, they do not kill the process).
#[test]
fn corruption_sweep_truncations_and_bit_flips_yield_typed_errors() {
    for seed in 0..20u64 {
        let records = stream(seed);
        let crashed = executor(seed)
            .with_eviction_log()
            .with_snapshots()
            .with_crash(CrashPlan::at_record(2_000 + 100 * seed));
        let (snap, log) = run_to_crash(crashed, &records);
        let artifacts: [(&str, Vec<u8>); 2] =
            [("snapshot", snap.encode()), ("eviction-log", log.encode())];
        for (what, bytes) in &artifacts {
            let check = |mutated: &[u8], how: &str| {
                let err = match *what {
                    "snapshot" => Snapshot::decode(mutated).map(|_| ()),
                    _ => EvictionLog::decode(mutated).map(|_| ()),
                };
                assert!(
                    err.is_err(),
                    "seed {seed}: {how} {what} decoded to Ok garbage"
                );
            };
            // Truncations: every prefix at 16 evenly spread lengths,
            // the empty slice included.
            for i in 0..16usize {
                let cut = bytes.len() * i / 16;
                check(&bytes[..cut], &format!("truncated-to-{cut}"));
            }
            // Bit flips: one bit at 64 evenly spread byte positions —
            // header, payload, and checksum territory all get hit.
            for i in 0..64usize {
                let pos = bytes.len() * i / 64;
                let mut mutated = bytes.clone();
                mutated[pos] ^= 1 << (i % 8);
                check(&mutated, &format!("bit-flipped-at-{pos}"));
            }
        }
        // The pristine pair still recovers: the sweep rejected copies,
        // not the originals.
        assert!(executor(seed).recover(&snap, log).is_ok(), "seed {seed}");
    }
}

/// A supervised shard whose checkpoint has rotted does not die: the
/// restart falls back to a fresh build plus whatever the replay buffer
/// holds, and the loss is ledgered. Exercised here end-to-end through
/// the decode path the sweep above covers byte-by-byte.
#[test]
fn recovery_refuses_mismatched_artifacts_never_panics_supervised() {
    use msa_core::{ShardFault, ShardedExecutor, SupervisorPolicy};
    let records = stream(31);
    // Arm a transient panic with a replay buffer big enough to cover
    // the whole partition: even if every checkpoint were refused, the
    // fresh-build fallback replays from record zero and the run still
    // accounts for every record.
    let mut sx = ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, 31, 2)
        .unwrap()
        .with_shard_fault(1, ShardFault::panic_at(40))
        .with_supervision(SupervisorPolicy::default().with_replay_capacity(u64::MAX));
    sx.run(&records);
    assert_eq!(sx.shard_health(1).restarts, 1);
    let (report, _) = sx.finish();
    assert_eq!(report.records, records.len() as u64);
}

/// The recovery driver's refusal paths, each with its typed error.
#[test]
fn recovery_refuses_mismatched_artifacts() {
    let seed = 23u64;
    let records = stream(seed);
    let crashed = executor(seed)
        .with_eviction_log()
        .with_snapshots()
        .with_crash(CrashPlan::at_record(4_000));
    let (snap, log) = run_to_crash(crashed, &records);
    assert!(snap.seq > 0, "need deliveries before the crash");

    // A different seed is a different configuration.
    assert!(matches!(
        executor(seed + 1).recover(&snap, log.clone()),
        Err(RecoveryError::PlanMismatch { .. })
    ));

    // A hole in the replay suffix.
    if log.len() >= 2 {
        let mut entries: Vec<LogEntry> = log.entries().to_vec();
        entries.remove(0);
        let gappy = EvictionLog::from_entries(entries);
        assert!(matches!(
            executor(seed).recover(&snap, gappy),
            Err(RecoveryError::LogGap { .. })
        ));
    }

    // A suffix entry from another epoch.
    let mut entries: Vec<LogEntry> = log.entries().to_vec();
    if let Some(e) = entries.last_mut() {
        e.epoch += 7;
    }
    assert!(matches!(
        executor(seed).recover(&snap, EvictionLog::from_entries(entries)),
        Err(RecoveryError::LogEpochMismatch { .. })
    ));

    // A suffix entry naming a query the plan does not have.
    let mut entries: Vec<LogEntry> = log.entries().to_vec();
    if let Some(e) = entries.last_mut() {
        e.slot = 99;
    }
    assert!(matches!(
        executor(seed).recover(&snap, EvictionLog::from_entries(entries)),
        Err(RecoveryError::QueryOutOfRange { slot: 99, .. })
    ));

    // A log whose high-water mark is behind the snapshot's.
    let stale = EvictionLog::from_entries(vec![LogEntry {
        epoch: 0,
        seq: 1,
        slot: 0,
        copies: 1,
        key: records[0].project(s("A")),
        agg: msa_core::AggState::unit(),
    }]);
    if snap.seq > 1 {
        assert!(matches!(
            executor(seed).recover(&snap, stale),
            Err(RecoveryError::LogBehindSnapshot { .. })
        ));
    }

    // And the artifacts are still good: the untouched pair recovers.
    assert!(executor(seed).recover(&snap, log).is_ok());
}

/// Manual captures are refused mid-epoch: snapshots are epoch-aligned
/// by contract.
#[test]
fn mid_epoch_capture_is_refused() {
    let records = stream(29);
    let mut ex = executor(29);
    ex.run(&records[..100]);
    assert!(matches!(ex.snapshot(), Err(SnapshotError::EpochUnaligned)));
    ex.flush_epoch();
    let snap = ex.snapshot().expect("boundary capture succeeds");
    assert_eq!(snap.records_hwm, 100);
    assert!(snap.plan_fingerprint != 0);
}

/// Shard-local recovery: crash one shard of a 4-shard deployment
/// mid-epoch (after a handful of eviction offers, i.e. during a flush
/// or cascade), recover it from its own snapshot + eviction log, and
/// the merged HFTA matches the **serial** executor's no-crash run on
/// the same stream — full per-epoch result equality, since the
/// channels are lossless.
#[test]
fn crashed_shard_recovers_to_match_serial_run() {
    use msa_core::ShardedExecutor;
    for seed in [3u64, 11, 42] {
        let records = stream(seed);
        // Serial reference that never crashes.
        let mut serial = executor(seed);
        serial.run(&records);
        let (_, want_hfta) = serial.finish();
        let build = || {
            ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, seed, 4)
                .unwrap()
                .with_durability()
        };
        for crash_shard in [0usize, 2] {
            // A few offers into the shard's run lands the fuse inside an
            // epoch — after the genesis checkpoint, before the final
            // flush — so recovery must replay suffix records and
            // deduplicate already-logged evictions.
            let mut sx = build().with_crash(crash_shard, CrashPlan::after_offers(7));
            sx.run(&records);
            assert_eq!(sx.crashed_shards(), vec![crash_shard], "seed {seed}");
            let (snapshot, log) = sx
                .durable_state(crash_shard)
                .expect("crashed shard has durable artifacts");
            assert!(
                snapshot.records_hwm < records.len() as u64,
                "seed {seed}: crash landed mid-stream"
            );
            sx.recover_shard(crash_shard, &snapshot, log, &records)
                .expect("shard recovery succeeds");
            let (report, hfta) = sx.finish();
            assert_eq!(report.records, records.len() as u64, "seed {seed}");
            assert_eq!(
                hfta.results(),
                want_hfta.results(),
                "seed {seed}, shard {crash_shard}: merged results vs serial no-crash run"
            );
            for q in [s("A"), s("B")] {
                assert_eq!(hfta.totals(q), want_hfta.totals(q), "seed {seed} {q}");
            }
        }
    }
}
