//! Crash-recovery suite: epoch-aligned checkpoints + write-ahead
//! eviction log give exactly-once replay.
//!
//! The headline invariant: for **any** seed and **any** crash point —
//! between records, between epochs, or in the middle of an end-of-epoch
//! flush — a crashed-and-recovered run produces bit-identical per-query
//! results and a bit-identical [`RunReport`] to a run that never
//! crashed. Composed with channel loss/duplication faults the same
//! holds, because the checkpoint carries the channel's PRNG cursor.
//!
//! Alongside the sweep: snapshot/log round-trips through their binary
//! encodings, corruption rejection with typed errors, and the typed
//! refusal paths of the recovery driver (plan mismatch, log gaps,
//! epoch mismatches, misaligned captures).

use msa_core::{
    AttrSet, CheckpointStore, CostParams, CrashPlan, DiskBackend, EvictionLog, Executor,
    ExecutorConfig, FaultPlan, GuardPolicy, Record, RecoveryError, RunReport, ShardedExecutor,
    Snapshot, SnapshotError, StorageFaultPlan, StoreErrorKind, StoreHandle, SwapError, SwapFault,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_gigascope::snapshot::LogEntry;
use msa_gigascope::Hfta;
use msa_stream::UniformStreamBuilder;

const EPOCH: u64 = 1_000_000;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

/// AB phantom feeding A and B query tables — evictions on every path.
fn phantom_plan() -> PhysicalPlan {
    PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: s("B"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])
    .unwrap()
}

fn stream(seed: u64) -> Vec<Record> {
    UniformStreamBuilder::new(4, 120)
        .records(6_000)
        .duration_secs(6.0)
        .seed(seed)
        .build()
        .records
}

fn executor(seed: u64) -> Executor {
    Executor::new(phantom_plan(), CostParams::paper(), EPOCH, seed)
}

/// Fault-free reference: the run that never crashes.
fn baseline(seed: u64, faults: Option<&FaultPlan>, records: &[Record]) -> (RunReport, Hfta) {
    let mut ex = executor(seed);
    if let Some(f) = faults {
        ex = ex.with_faults(f);
    }
    ex.run(records);
    ex.finish()
}

/// Runs `ex` into its armed crash and returns the durable artifacts the
/// "dead process" leaves behind (the harness flushes explicitly so
/// fuses aimed at the final flush are reachable too).
fn run_to_crash(mut ex: Executor, records: &[Record]) -> (Snapshot, EvictionLog) {
    ex.run(records);
    if !ex.has_crashed() {
        ex.flush_epoch();
    }
    assert!(ex.has_crashed(), "crash fuse must fire for this sweep");
    ex.durable_state().expect("genesis snapshot always exists")
}

/// Crash → recover → resume → compare bit-for-bit against `base`.
fn recover_and_compare(
    seed: u64,
    faults: Option<&FaultPlan>,
    records: &[Record],
    crash: CrashPlan,
    base: &(RunReport, Hfta),
    label: &str,
) {
    let mut crashed = executor(seed)
        .with_eviction_log()
        .with_snapshots()
        .with_crash(crash);
    if let Some(f) = faults {
        crashed = crashed.with_faults(f);
    }
    let (snap, log) = run_to_crash(crashed, records);

    let recovered = executor(seed)
        .recover(&snap, log)
        .unwrap_or_else(|e| panic!("{label}: recovery refused: {e}"));
    let mut ex = recovered;
    ex.run(&records[snap.records_hwm as usize..]);
    let (report, hfta) = ex.finish();

    assert_eq!(report, base.0, "{label}: RunReport must be bit-identical");
    assert_eq!(
        hfta.results(),
        base.1.results(),
        "{label}: per-epoch results must be bit-identical"
    );
    for q in [s("A"), s("B")] {
        assert_eq!(hfta.totals(q), base.1.totals(q), "{label}: totals for {q}");
    }
}

/// The first crash point that is provably *mid-flush*: one eviction
/// offer into an end-of-epoch scan that makes at least two.
fn mid_flush_offer(seed: u64, faults: Option<&FaultPlan>, records: &[Record]) -> Option<u64> {
    let mut ex = executor(seed);
    if let Some(f) = faults {
        ex = ex.with_faults(f);
    }
    let mut prev_offers = 0u64;
    let mut prev_flush = 0u64;
    let mut prev_epochs = 0u64;
    for r in records {
        ex.process(r);
        let rep = ex.report();
        if rep.epochs > prev_epochs && rep.flush_evictions - prev_flush >= 2 {
            return Some(prev_offers + 1);
        }
        prev_epochs = rep.epochs;
        prev_flush = rep.flush_evictions;
        prev_offers = rep.intra_evictions + rep.flush_evictions;
    }
    None
}

/// The headline sweep: ≥ 20 seeds × ≥ 4 crash positions (first record,
/// 25 % / 50 % / 75 % of the stream, provably mid-flush, last record,
/// and inside the final flush), every combination bit-identical to the
/// fault-free run.
#[test]
fn any_seed_any_crash_point_recovers_bit_identical() {
    for seed in 0..20u64 {
        let records = stream(seed);
        let base = baseline(seed, None, &records);
        let n = records.len() as u64;
        let total_offers = base.0.intra_evictions + base.0.flush_evictions;
        assert!(total_offers > 10, "seed {seed}: workload must evict");

        let mut crashes = vec![
            (CrashPlan::at_record(0), "record 0".to_string()),
            (CrashPlan::at_record(n / 4), "record 25%".to_string()),
            (CrashPlan::at_record(n / 2), "record 50%".to_string()),
            (CrashPlan::at_record(3 * n / 4), "record 75%".to_string()),
            (CrashPlan::at_record(n - 1), "last record".to_string()),
            (
                CrashPlan::after_offers(total_offers - 1),
                "final flush".to_string(),
            ),
        ];
        if let Some(offers) = mid_flush_offer(seed, None, &records) {
            crashes.push((CrashPlan::after_offers(offers), "mid-flush".to_string()));
        }
        for (crash, what) in crashes {
            recover_and_compare(
                seed,
                None,
                &records,
                crash,
                &base,
                &format!("seed {seed}, crash at {what}"),
            );
        }
    }
}

/// Composed with PR 1's channel faults: the checkpoint carries the
/// channel's PRNG cursor, so the recovered run re-draws the identical
/// loss/duplication decisions — bit-identical reports (and therefore
/// the same count-bias bounds) survive crashes too.
#[test]
fn crash_recovery_composes_with_channel_faults() {
    for seed in [3u64, 7, 11, 19, 23] {
        let records = stream(seed);
        let faults = FaultPlan::new(seed ^ 0xFA_17)
            .with_eviction_loss(0.10)
            .with_eviction_duplication(0.05);
        let base = baseline(seed, Some(&faults), &records);
        assert!(base.0.evictions_dropped > 0, "seed {seed}: loss must fire");
        assert!(
            base.0.evictions_duplicated > 0,
            "seed {seed}: dup must fire"
        );

        let n = records.len() as u64;
        let mut crashes = vec![
            (CrashPlan::at_record(n / 3), "record 33%".to_string()),
            (CrashPlan::at_record(2 * n / 3), "record 66%".to_string()),
        ];
        if let Some(offers) = mid_flush_offer(seed, Some(&faults), &records) {
            crashes.push((CrashPlan::after_offers(offers), "mid-flush".to_string()));
        }
        for (crash, what) in crashes {
            recover_and_compare(
                seed,
                Some(&faults),
                &records,
                crash,
                &base,
                &format!("faulty seed {seed}, crash at {what}"),
            );
        }
        // And the bias identity still reconciles the observed counts.
        for q in [s("A"), s("B")] {
            let observed: u64 = base.1.totals(q).values().sum();
            assert_eq!(
                observed as i64,
                records.len() as i64 + base.0.count_bias(q),
                "bias identity for {q}"
            );
        }
    }
}

/// The guard's shed cursor is part of the checkpoint: a crashed-and-
/// recovered overloaded run sheds the identical records.
#[test]
fn crash_recovery_preserves_overload_guard_state() {
    let seed = 5u64;
    let records = stream(seed);
    let build = || executor(seed).with_guard(GuardPolicy::new(400.0));
    let mut base_ex = build();
    base_ex.run(&records);
    let base = base_ex.finish();
    assert!(base.0.records_shed > 0, "budget must force shedding");
    assert!(!base.0.guard_transitions.is_empty());

    for at in [1_000u64, 2_500, 4_999] {
        let crashed = build()
            .with_eviction_log()
            .with_snapshots()
            .with_crash(CrashPlan::at_record(at));
        let (snap, log) = run_to_crash(crashed, &records);
        assert!(snap.guard.is_some(), "guard state must be captured");
        let mut ex = build().recover(&snap, log).expect("recovery");
        ex.run(&records[snap.records_hwm as usize..]);
        let (report, hfta) = ex.finish();
        assert_eq!(report, base.0, "crash at record {at}");
        assert_eq!(hfta.results(), base.1.results());
    }
}

/// Satellite: determinism regression — two same-seed runs produce
/// identical reports and identical per-epoch results (the property the
/// whole recovery design rests on).
#[test]
fn same_seed_runs_are_bit_identical() {
    for seed in [0u64, 9, 42] {
        let records = stream(seed);
        let run = || {
            let faults = FaultPlan::new(seed)
                .with_eviction_loss(0.05)
                .with_eviction_duplication(0.02);
            let mut ex = executor(seed).with_faults(&faults);
            ex.run(&records);
            ex.finish()
        };
        let (report_a, hfta_a) = run();
        let (report_b, hfta_b) = run();
        assert_eq!(report_a, report_b, "seed {seed}: reports diverged");
        assert_eq!(
            hfta_a.results(),
            hfta_b.results(),
            "seed {seed}: results diverged"
        );
    }
}

/// The durable artifacts survive their binary encodings losslessly, and
/// recovery from the decoded bytes is as good as from the originals.
#[test]
fn recovery_works_through_the_binary_encoding() {
    let seed = 13u64;
    let records = stream(seed);
    let base = baseline(seed, None, &records);
    let crashed = executor(seed)
        .with_eviction_log()
        .with_snapshots()
        .with_crash(CrashPlan::at_record(records.len() as u64 / 2));
    let (snap, log) = run_to_crash(crashed, &records);

    // Round-trip both artifacts through bytes.
    let snap2 = Snapshot::decode(&snap.encode()).expect("snapshot round-trip");
    let log2 = EvictionLog::decode(&log.encode()).expect("log round-trip");
    assert_eq!(snap2, snap);
    assert_eq!(log2, log);

    let mut ex = executor(seed).recover(&snap2, log2).expect("recovery");
    ex.run(&records[snap2.records_hwm as usize..]);
    let (report, hfta) = ex.finish();
    assert_eq!(report, base.0);
    assert_eq!(hfta.results(), base.1.results());
}

/// Corrupted artifacts decode to typed errors, never to garbage state.
#[test]
fn corrupted_artifacts_are_rejected() {
    let seed = 17u64;
    let records = stream(seed);
    let crashed = executor(seed)
        .with_eviction_log()
        .with_snapshots()
        .with_crash(CrashPlan::at_record(3_000));
    let (snap, log) = run_to_crash(crashed, &records);

    let mut bytes = snap.encode();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    assert!(matches!(
        Snapshot::decode(&bytes),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
    let good = snap.encode();
    assert!(matches!(
        Snapshot::decode(&good[..good.len() - 2]),
        Err(SnapshotError::Truncated)
    ));

    if !log.is_empty() {
        let mut lb = log.encode();
        let last = lb.len() - 1;
        lb[last] ^= 0x01;
        assert!(matches!(
            EvictionLog::decode(&lb),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }
}

/// The adversarial sweep behind [`corrupted_artifacts_are_rejected`]:
/// for 20 seeds, truncate both durable artifacts at a spread of lengths
/// and flip single bits across a spread of positions. Every mutation
/// must decode to a typed [`SnapshotError`] — never to `Ok` garbage and
/// never to a panic (a panic in `decode` fails this test by itself,
/// which is exactly the supervised-restart property: corrupt artifacts
/// downgrade recovery, they do not kill the process).
#[test]
fn corruption_sweep_truncations_and_bit_flips_yield_typed_errors() {
    for seed in 0..20u64 {
        let records = stream(seed);
        let crashed = executor(seed)
            .with_eviction_log()
            .with_snapshots()
            .with_crash(CrashPlan::at_record(2_000 + 100 * seed));
        let (snap, log) = run_to_crash(crashed, &records);
        let artifacts: [(&str, Vec<u8>); 2] =
            [("snapshot", snap.encode()), ("eviction-log", log.encode())];
        for (what, bytes) in &artifacts {
            let check = |mutated: &[u8], how: &str| {
                let err = match *what {
                    "snapshot" => Snapshot::decode(mutated).map(|_| ()),
                    _ => EvictionLog::decode(mutated).map(|_| ()),
                };
                assert!(
                    err.is_err(),
                    "seed {seed}: {how} {what} decoded to Ok garbage"
                );
            };
            // Truncations: every prefix at 16 evenly spread lengths,
            // the empty slice included.
            for i in 0..16usize {
                let cut = bytes.len() * i / 16;
                check(&bytes[..cut], &format!("truncated-to-{cut}"));
            }
            // Bit flips: one bit at 64 evenly spread byte positions —
            // header, payload, and checksum territory all get hit.
            for i in 0..64usize {
                let pos = bytes.len() * i / 64;
                let mut mutated = bytes.clone();
                mutated[pos] ^= 1 << (i % 8);
                check(&mutated, &format!("bit-flipped-at-{pos}"));
            }
        }
        // The pristine pair still recovers: the sweep rejected copies,
        // not the originals.
        assert!(executor(seed).recover(&snap, log).is_ok(), "seed {seed}");
    }
}

/// A supervised shard whose checkpoint has rotted does not die: the
/// restart falls back to a fresh build plus whatever the replay buffer
/// holds, and the loss is ledgered. Exercised here end-to-end through
/// the decode path the sweep above covers byte-by-byte.
#[test]
fn recovery_refuses_mismatched_artifacts_never_panics_supervised() {
    use msa_core::{ShardFault, ShardedExecutor, SupervisorPolicy};
    let records = stream(31);
    // Arm a transient panic with a replay buffer big enough to cover
    // the whole partition: even if every checkpoint were refused, the
    // fresh-build fallback replays from record zero and the run still
    // accounts for every record.
    let mut sx = ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, 31, 2)
        .unwrap()
        .with_shard_fault(1, ShardFault::panic_at(40))
        .with_supervision(SupervisorPolicy::default().with_replay_capacity(u64::MAX));
    sx.run(&records);
    assert_eq!(sx.shard_health(1).restarts, 1);
    let (report, _) = sx.finish();
    assert_eq!(report.records, records.len() as u64);
}

/// The recovery driver's refusal paths, each with its typed error.
#[test]
fn recovery_refuses_mismatched_artifacts() {
    let seed = 23u64;
    let records = stream(seed);
    let crashed = executor(seed)
        .with_eviction_log()
        .with_snapshots()
        .with_crash(CrashPlan::at_record(4_000));
    let (snap, log) = run_to_crash(crashed, &records);
    assert!(snap.seq > 0, "need deliveries before the crash");

    // A different seed is a different configuration.
    assert!(matches!(
        executor(seed + 1).recover(&snap, log.clone()),
        Err(RecoveryError::PlanMismatch { .. })
    ));

    // A hole in the replay suffix.
    if log.len() >= 2 {
        let mut entries: Vec<LogEntry> = log.entries().to_vec();
        entries.remove(0);
        let gappy = EvictionLog::from_entries(entries);
        assert!(matches!(
            executor(seed).recover(&snap, gappy),
            Err(RecoveryError::LogGap { .. })
        ));
    }

    // A suffix entry from another epoch.
    let mut entries: Vec<LogEntry> = log.entries().to_vec();
    if let Some(e) = entries.last_mut() {
        e.epoch += 7;
    }
    assert!(matches!(
        executor(seed).recover(&snap, EvictionLog::from_entries(entries)),
        Err(RecoveryError::LogEpochMismatch { .. })
    ));

    // A suffix entry naming a query the plan does not have.
    let mut entries: Vec<LogEntry> = log.entries().to_vec();
    if let Some(e) = entries.last_mut() {
        e.slot = 99;
    }
    assert!(matches!(
        executor(seed).recover(&snap, EvictionLog::from_entries(entries)),
        Err(RecoveryError::QueryOutOfRange { slot: 99, .. })
    ));

    // A log whose high-water mark is behind the snapshot's.
    let stale = EvictionLog::from_entries(vec![LogEntry {
        epoch: 0,
        seq: 1,
        slot: 0,
        copies: 1,
        key: records[0].project(s("A")),
        agg: msa_core::AggState::unit(),
    }]);
    if snap.seq > 1 {
        assert!(matches!(
            executor(seed).recover(&snap, stale),
            Err(RecoveryError::LogBehindSnapshot { .. })
        ));
    }

    // And the artifacts are still good: the untouched pair recovers.
    assert!(executor(seed).recover(&snap, log).is_ok());
}

/// Manual captures are refused mid-epoch: snapshots are epoch-aligned
/// by contract.
#[test]
fn mid_epoch_capture_is_refused() {
    let records = stream(29);
    let mut ex = executor(29);
    ex.run(&records[..100]);
    assert!(matches!(ex.snapshot(), Err(SnapshotError::EpochUnaligned)));
    ex.flush_epoch();
    let snap = ex.snapshot().expect("boundary capture succeeds");
    assert_eq!(snap.records_hwm, 100);
    assert!(snap.plan_fingerprint != 0);
}

// ---------------------------------------------------------------------
// Durable-store drills: the seeded fault matrix over the generational
// checkpoint store. Every cell must end in one of exactly two states —
// bit-identical recovery (given replay from the recovered high-water
// mark) or an explicit, ledger-accounted fallback to an older
// generation — and every cell must be bit-identical across two runs.
// ---------------------------------------------------------------------

/// Dense drill stream: epoch boundary every 100 records (epoch
/// 1 000 µs, timestamps 10 µs apart) and a key space wider than every
/// LFTA on the path (23 × 17 = 391 AB keys into 64 buckets; 23 A and
/// 17 B values into 16 buckets each) — pigeonhole guarantees
/// intra-epoch evictions, so WAL entries land in the live generation
/// *between* boundary commits, exactly the artifacts a mid-epoch crash
/// leaves behind.
const DRILL_EPOCH: u64 = 1_000;

fn drill_records(n: u32) -> Vec<Record> {
    (0..n)
        .map(|i| Record::new(&[i % 23, i % 17, 0, 0], u64::from(i) * 10))
        .collect()
}

fn drill_config(seed: u64) -> ExecutorConfig {
    let mut cfg = ExecutorConfig::new(phantom_plan(), CostParams::paper(), DRILL_EPOCH, seed);
    cfg.durable = true;
    cfg
}

/// Fault-free drill reference.
fn drill_oracle(seed: u64, recs: &[Record]) -> (RunReport, Hfta) {
    let mut ex = drill_config(seed).build();
    ex.run(recs);
    ex.finish()
}

/// Everything a drill cell produces, for the two-run bit-identity gate.
struct CellOutcome {
    stats: msa_core::StoreStats,
    generation: u64,
    records_hwm: u64,
    fallbacks: u64,
    torn_entries_dropped: u64,
    report: RunReport,
    hfta: Hfta,
}

fn assert_cells_identical(a: &CellOutcome, b: &CellOutcome, label: &str) {
    assert_eq!(a.stats, b.stats, "{label}: store stats diverged");
    assert_eq!(a.generation, b.generation, "{label}: generation diverged");
    assert_eq!(a.records_hwm, b.records_hwm, "{label}: hwm diverged");
    assert_eq!(a.fallbacks, b.fallbacks, "{label}: fallbacks diverged");
    assert_eq!(
        a.torn_entries_dropped, b.torn_entries_dropped,
        "{label}: torn-entry accounting diverged"
    );
    assert_eq!(a.report, b.report, "{label}: reports diverged");
    assert_eq!(
        a.hfta.results(),
        b.hfta.results(),
        "{label}: results diverged"
    );
    for q in [s("A"), s("B")] {
        assert_eq!(a.hfta.totals(q), b.hfta.totals(q), "{label}: totals {q}");
    }
}

/// The no-silent-corruption gate: a recovered-and-replayed run matches
/// the fault-free oracle bit for bit.
fn assert_matches_oracle(cell: &CellOutcome, oracle: &(RunReport, Hfta), label: &str) {
    assert_eq!(
        cell.report.records, oracle.0.records,
        "{label}: record conservation"
    );
    assert_eq!(
        cell.hfta.results(),
        oracle.1.results(),
        "{label}: per-epoch results vs oracle"
    );
    for q in [s("A"), s("B")] {
        assert_eq!(
            cell.hfta.totals(q),
            oracle.1.totals(q),
            "{label}: totals {q} vs oracle"
        );
    }
}

/// One post-hoc corruption cell: run durably, rot one artifact class,
/// power-cut, recover, replay, compare against the oracle.
fn corruption_cell(
    artifact: &str,
    rot: &str,
    recs: &[Record],
    oracle: &(RunReport, Hfta),
    label: &str,
) -> CellOutcome {
    let handle = StoreHandle::in_memory().unwrap();
    let mut live = drill_config(7).build().with_store(handle.clone());
    live.run(recs);
    drop(live);
    let newest = handle.generation();
    let targets: Vec<String> = match artifact {
        "snapshot" => vec![format!("gen-{newest}/snapshot.bin")],
        "wal" => {
            let dir = format!("gen-{newest}");
            let segs: Vec<String> = handle
                .with_backend(|b| b.list(&dir).unwrap())
                .into_iter()
                .filter(|n| n.starts_with("wal-"))
                .collect();
            let seg = segs
                .last()
                .cloned()
                .expect("drill stream must leave WAL entries after the last commit");
            vec![format!("{dir}/{seg}")]
        }
        // Rot BOTH manifest slots: recovery must fall through to the
        // orphan generation-directory scan.
        _ => vec!["manifest.a".to_string(), "manifest.b".to_string()],
    };
    for path in &targets {
        let len = handle.with_backend(|b| b.read(path).unwrap().len());
        match rot {
            "bit-flip" => handle.with_backend(|b| b.corrupt(path, len / 3)).unwrap(),
            // Cut a WAL tail mid-frame; halve everything else.
            _ if artifact == "wal" => handle
                .with_backend(|b| b.truncate(path, len.saturating_sub(3)))
                .unwrap(),
            _ => handle.with_backend(|b| b.truncate(path, len / 2)).unwrap(),
        }
    }
    handle.power_cut().unwrap();
    let recovery = handle.recover_executor(&drill_config(7));
    let mut ex = recovery
        .executor
        .unwrap_or_else(|| panic!("{label}: an older generation must stay readable"));
    ex.run(&recs[usize::try_from(recovery.records_hwm).unwrap()..]);
    let (report, hfta) = ex.finish();
    let cell = CellOutcome {
        stats: handle.stats(),
        generation: recovery.generation,
        records_hwm: recovery.records_hwm,
        fallbacks: recovery.fallbacks,
        torn_entries_dropped: recovery.torn_entries_dropped,
        report,
        hfta,
    };
    assert_matches_oracle(&cell, oracle, label);
    match artifact {
        "snapshot" => {
            // The newest checkpoint is gone: explicit, ledgered fallback.
            assert!(cell.fallbacks >= 1, "{label}: fallback must be taken");
            assert!(cell.generation < newest, "{label}: older generation");
            assert!(
                cell.stats.generations_quarantined >= 1,
                "{label}: the rotten generation must be quarantined"
            );
        }
        "wal" => {
            // Same generation, repaired WAL, dropped entries accounted.
            assert_eq!(cell.generation, newest, "{label}: same generation");
            assert!(
                cell.torn_entries_dropped >= 1,
                "{label}: torn tail must be detected and counted"
            );
        }
        _ => {
            // Both manifests dead: the orphan scan still finds the
            // newest generation — nothing is lost, nothing falls back.
            assert_eq!(cell.generation, newest, "{label}: orphan scan");
            assert_eq!(cell.fallbacks, 0, "{label}: no fallback needed");
        }
    }
    cell
}

/// The post-hoc corruption matrix: {bit-flip, truncation} × {snapshot,
/// WAL tail, manifest pair}, each cell run twice and required to be
/// bit-identical — and each cell required to end in bit-identical
/// recovery or explicit accounted fallback, never silent corruption.
#[test]
fn corruption_matrix_recovers_bit_identically_or_falls_back_accounted() {
    let recs = drill_records(240);
    let oracle = drill_oracle(7, &recs);
    for artifact in ["snapshot", "wal", "manifest"] {
        for rot in ["bit-flip", "truncate"] {
            let label = format!("{artifact} x {rot}");
            let first = corruption_cell(artifact, rot, &recs, &oracle, &label);
            let second = corruption_cell(artifact, rot, &recs, &oracle, &label);
            assert_cells_identical(&first, &second, &label);
        }
    }
}

/// One in-flight fault-plan cell: the plan is armed before the run, the
/// pipeline must survive it (degrading to in-memory artifacts at
/// worst), and post-power-cut recovery plus replay must match the
/// oracle bit for bit.
fn in_flight_cell(
    plan: StorageFaultPlan,
    recs: &[Record],
    oracle: &(RunReport, Hfta),
    label: &str,
) -> CellOutcome {
    let handle = StoreHandle::in_memory_with_faults(plan).unwrap();
    let mut live = drill_config(7).build().with_store(handle.clone());
    live.run(recs);
    assert_eq!(
        live.report().records,
        recs.len() as u64,
        "{label}: a storage fault must never take the pipeline down"
    );
    drop(live);
    handle.power_cut().unwrap();
    let recovery = handle.recover_executor(&drill_config(7));
    let (generation, records_hwm) = (recovery.generation, recovery.records_hwm);
    let (fallbacks, torn) = (recovery.fallbacks, recovery.torn_entries_dropped);
    let mut ex = match recovery.executor {
        Some(ex) => ex,
        // Nothing recoverable (e.g. the fault hit the genesis commit):
        // an explicit fresh start, replayed from record zero.
        None => drill_config(7).build(),
    };
    ex.run(&recs[usize::try_from(records_hwm).unwrap()..]);
    let (report, hfta) = ex.finish();
    let cell = CellOutcome {
        stats: handle.stats(),
        generation,
        records_hwm,
        fallbacks,
        torn_entries_dropped: torn,
        report,
        hfta,
    };
    assert_matches_oracle(&cell, oracle, label);
    cell
}

/// The in-flight fault sweep: {torn write, ENOSPC, transient EIO,
/// crash-after-op} × a spread of op indices covering snapshot writes,
/// manifest flips, WAL appends and fsyncs — plus the lying-fsync cell,
/// whose "durable" generations evaporate at the power cut and recovery
/// restarts explicitly from record zero.
#[test]
fn in_flight_storage_fault_sweep_recovers_bit_identically() {
    let recs = drill_records(200);
    let oracle = drill_oracle(7, &recs);
    for op in [0u64, 1, 2, 3, 5, 9, 17, 33, 65] {
        for kind in ["torn-write", "enospc", "transient-eio", "crash-after"] {
            let plan = match kind {
                "torn-write" => StorageFaultPlan {
                    torn_write: Some((op, 7)),
                    ..StorageFaultPlan::none()
                },
                "enospc" => StorageFaultPlan {
                    fail_op: Some((op, StoreErrorKind::NoSpace)),
                    ..StorageFaultPlan::none()
                },
                "transient-eio" => StorageFaultPlan {
                    transient_eio: Some((op, 3)),
                    ..StorageFaultPlan::none()
                },
                _ => StorageFaultPlan {
                    crash_after_op: Some(op),
                    ..StorageFaultPlan::none()
                },
            };
            let label = format!("{kind} at op {op}");
            let first = in_flight_cell(plan.clone(), &recs, &oracle, &label);
            let second = in_flight_cell(plan, &recs, &oracle, &label);
            assert_cells_identical(&first, &second, &label);
            if kind == "transient-eio" {
                // A 3-op EIO window sits inside the attempt-counted
                // retry budget: absorbed, never surfaced.
                assert!(first.stats.io_retries >= 3, "{label}: window absorbed");
                assert_eq!(first.stats.io_gave_up, 0, "{label}");
                assert_eq!(first.fallbacks, 0, "{label}: no fallback");
            }
        }
    }
    let lying = StorageFaultPlan {
        lying_fsync: true,
        ..StorageFaultPlan::none()
    };
    let label = "lying-fsync";
    let first = in_flight_cell(lying.clone(), &recs, &oracle, label);
    let second = in_flight_cell(lying, &recs, &oracle, label);
    assert_eq!(
        first.records_hwm, 0,
        "{label}: nothing claimed durable survives the power cut"
    );
    assert_cells_identical(&first, &second, label);
}

/// The kill-between-syscalls sweep over real files: a fused
/// [`DiskBackend`] aborts after exactly `k` syscall steps — mid
/// write-temp, between fsync and rename, after rename but before the
/// directory fsync, inside a WAL append, during GC — and for every `k`
/// a fresh process reopening the directory must recover to a state
/// that, after replay, is bit-identical to the fault-free run. This is
/// the crash-atomicity proof for the disk backend's write discipline.
#[test]
fn disk_kill_between_syscalls_sweep_is_crash_atomic() {
    let recs = drill_records(80);
    let oracle = drill_oracle(11, &recs);
    let base = std::env::temp_dir().join(format!("msa_recovery_kill_{}", std::process::id()));
    for k in 0..40u64 {
        let root = base.join(format!("k{k}"));
        let _ = std::fs::remove_dir_all(&root);
        {
            let backend = DiskBackend::with_kill_after(&root, k).unwrap();
            let store = StoreHandle::new(CheckpointStore::open(Box::new(backend)).unwrap());
            let mut live = drill_config(11).build().with_store(store);
            live.run(&recs);
            assert_eq!(
                live.report().records,
                recs.len() as u64,
                "kill at step {k}: the pipeline must survive the dead store"
            );
        }
        // "Reboot": a fresh backend over the same directory sees only
        // what a killed process would have left on disk.
        let handle = StoreHandle::on_disk(&root).unwrap();
        let recovery = handle.recover_executor(&drill_config(11));
        let records_hwm = recovery.records_hwm;
        let mut ex = match recovery.executor {
            Some(ex) => ex,
            None => drill_config(11).build(),
        };
        ex.run(&recs[usize::try_from(records_hwm).unwrap()..]);
        let (report, hfta) = ex.finish();
        assert_eq!(report.records, oracle.0.records, "kill at step {k}");
        assert_eq!(
            hfta.results(),
            oracle.1.results(),
            "kill at step {k}: recovery must be bit-identical — never a mixture"
        );
        for q in [s("A"), s("B")] {
            assert_eq!(hfta.totals(q), oracle.1.totals(q), "kill at step {k} {q}");
        }
        std::fs::remove_dir_all(&root).ok();
    }
    std::fs::remove_dir_all(&base).ok();
}

/// A store-backed supervised restart: the panicked shard's driver
/// recovers from its durable generations (not the in-process artifacts)
/// and, with replay covering the gap, the merged output is
/// bit-identical to the fault-free run — twice.
#[test]
fn store_backed_supervised_restart_replays_bit_identically() {
    use msa_core::{ShardFault, SupervisorPolicy};
    let records = stream(31);
    let baseline = {
        let mut sx = ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, 31, 2)
            .unwrap()
            .with_durability();
        sx.run(&records);
        sx.finish()
    };
    let run = || {
        let stores = vec![
            StoreHandle::in_memory().unwrap(),
            StoreHandle::in_memory().unwrap(),
        ];
        let mut sx = ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, 31, 2)
            .unwrap()
            .with_stores(stores)
            .with_shard_fault(1, ShardFault::panic_at(40))
            .with_supervision(SupervisorPolicy::default().with_replay_capacity(u64::MAX));
        sx.run(&records);
        assert_eq!(sx.shard_health(1).restarts, 1);
        sx.finish()
    };
    let (report_a, hfta_a) = run();
    let (report_b, hfta_b) = run();
    assert_eq!(report_a, report_b, "two store-backed restarts diverged");
    assert_eq!(report_a.records, records.len() as u64);
    assert_eq!(
        hfta_a.results(),
        baseline.1.results(),
        "store-backed restart must match the fault-free run"
    );
    for q in [s("A"), s("B")] {
        assert_eq!(hfta_a.totals(q), baseline.1.totals(q));
        assert_eq!(hfta_b.totals(q), baseline.1.totals(q));
    }
}

/// A crashed shard recovers from its attached store — once from a
/// pristine store (no fallback) and once after its newest generation
/// has rotted (explicit fallback, replay covers the gap) — and both
/// paths merge to the serial no-crash oracle bit for bit.
#[test]
fn crashed_shard_recovers_from_its_store_with_and_without_rot() {
    for seed in [11u64, 42] {
        let records = stream(seed);
        let mut serial = executor(seed);
        serial.run(&records);
        let (_, want) = serial.finish();
        for rot in [false, true] {
            let stores: Vec<StoreHandle> =
                (0..4).map(|_| StoreHandle::in_memory().unwrap()).collect();
            let crash_shard = 2usize;
            let mut sx = ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, seed, 4)
                .unwrap()
                .with_stores(stores.clone())
                .with_crash(crash_shard, CrashPlan::after_offers(7));
            sx.run(&records);
            assert_eq!(sx.crashed_shards(), vec![crash_shard], "seed {seed}");
            if rot {
                let store = &stores[crash_shard];
                let newest = store.generation();
                assert!(newest >= 1, "seed {seed}: genesis commit must exist");
                store
                    .with_backend(|b| b.corrupt(&format!("gen-{newest}/snapshot.bin"), 9))
                    .unwrap();
            }
            let fallbacks = sx
                .recover_shard_from_store(crash_shard, &records)
                .expect("crashed shard has a store attached");
            if rot {
                assert!(fallbacks >= 1, "seed {seed}: rot must force a fallback");
            } else {
                assert_eq!(fallbacks, 0, "seed {seed}: pristine store, no fallback");
            }
            let (report, hfta) = sx.finish();
            assert_eq!(report.records, records.len() as u64, "seed {seed}");
            assert_eq!(
                hfta.results(),
                want.results(),
                "seed {seed}, rot {rot}: merged results vs serial no-crash run"
            );
            for q in [s("A"), s("B")] {
                assert_eq!(hfta.totals(q), want.totals(q), "seed {seed} rot {rot} {q}");
            }
        }
    }
}

/// A hot swap whose durable commit is refused rolls the whole
/// transaction back: the old deployment keeps serving bit-identically
/// to a run that never attempted the swap, and the rollback ticks the
/// ledger. A healthy twin proves the refusal was the store, not the
/// plan — and that a committed swap persists a new generation in every
/// shard's store.
#[test]
fn hot_swap_durable_commit_failure_rolls_back_untouched() {
    use msa_gigascope::plan::PlanNode;
    let seed = 13u64;
    let records = stream(seed);
    // Split exactly at an epoch boundary so the quiesce barrier is the
    // same flush the stream itself would have run.
    let half = records
        .iter()
        .position(|r| r.ts_micros / EPOCH >= 3)
        .expect("stream spans six epochs");
    let flat_plan = || {
        PhysicalPlan::new(vec![
            PlanNode {
                attrs: s("A"),
                parent: None,
                buckets: 16,
                is_query: true,
            },
            PlanNode {
                attrs: s("B"),
                parent: None,
                buckets: 16,
                is_query: true,
            },
        ])
        .unwrap()
    };
    let build = |stores: Vec<StoreHandle>| {
        ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, seed, 2)
            .unwrap()
            .with_stores(stores)
    };
    // Oracle: the same deployment, aligned the same way, never swapping.
    let oracle = {
        let mut sx = build(vec![
            StoreHandle::in_memory().unwrap(),
            StoreHandle::in_memory().unwrap(),
        ]);
        sx.run(&records[..half]);
        sx.align_to_epoch(3);
        sx.run(&records[half..]);
        sx.finish()
    };
    // Shard 1's store refuses every write (an EIO window wider than any
    // retry budget): the handoff cannot be made durable.
    let sick = StorageFaultPlan {
        transient_eio: Some((0, u64::MAX)),
        ..StorageFaultPlan::none()
    };
    let mut sx = build(vec![
        StoreHandle::in_memory().unwrap(),
        StoreHandle::in_memory_with_faults(sick).unwrap(),
    ]);
    sx.run(&records[..half]);
    sx.align_to_epoch(3);
    let err = sx.hot_swap(flat_plan(), &SwapFault::none()).unwrap_err();
    assert!(
        matches!(err, SwapError::DurableCommit { shard: 1, .. }),
        "expected a durable-commit refusal, got: {err}"
    );
    sx.run(&records[half..]);
    let (report, hfta) = sx.finish();
    assert_eq!(report.records, records.len() as u64);
    assert_eq!(
        report.replans_rolled_back, 1,
        "rollback must tick the ledger"
    );
    assert_eq!(report.replans_committed, 0);
    assert_eq!(
        hfta.results(),
        oracle.1.results(),
        "a rolled-back swap must leave the deployment untouched"
    );
    for q in [s("A"), s("B")] {
        assert_eq!(hfta.totals(q), oracle.1.totals(q), "{q}");
    }
    // The healthy twin: same swap, working stores, committed durably.
    let stores = vec![
        StoreHandle::in_memory().unwrap(),
        StoreHandle::in_memory().unwrap(),
    ];
    let mut sx = build(stores.clone());
    sx.run(&records[..half]);
    sx.align_to_epoch(3);
    let pre = [stores[0].stats().commits, stores[1].stats().commits];
    let swap = sx
        .hot_swap(flat_plan(), &SwapFault::none())
        .expect("clean swap");
    assert!(swap.outcome.committed());
    assert!(
        stores[0].stats().commits > pre[0] && stores[1].stats().commits > pre[1],
        "the handoff itself must land as a durable generation per shard"
    );
    sx.run(&records[half..]);
    let (report, _) = sx.finish();
    assert_eq!(report.records, records.len() as u64);
    assert_eq!(report.replans_committed, 1);
}

/// Shard-local recovery: crash one shard of a 4-shard deployment
/// mid-epoch (after a handful of eviction offers, i.e. during a flush
/// or cascade), recover it from its own snapshot + eviction log, and
/// the merged HFTA matches the **serial** executor's no-crash run on
/// the same stream — full per-epoch result equality, since the
/// channels are lossless.
#[test]
fn crashed_shard_recovers_to_match_serial_run() {
    use msa_core::ShardedExecutor;
    for seed in [3u64, 11, 42] {
        let records = stream(seed);
        // Serial reference that never crashes.
        let mut serial = executor(seed);
        serial.run(&records);
        let (_, want_hfta) = serial.finish();
        let build = || {
            ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, seed, 4)
                .unwrap()
                .with_durability()
        };
        for crash_shard in [0usize, 2] {
            // A few offers into the shard's run lands the fuse inside an
            // epoch — after the genesis checkpoint, before the final
            // flush — so recovery must replay suffix records and
            // deduplicate already-logged evictions.
            let mut sx = build().with_crash(crash_shard, CrashPlan::after_offers(7));
            sx.run(&records);
            assert_eq!(sx.crashed_shards(), vec![crash_shard], "seed {seed}");
            let (snapshot, log) = sx
                .durable_state(crash_shard)
                .expect("crashed shard has durable artifacts");
            assert!(
                snapshot.records_hwm < records.len() as u64,
                "seed {seed}: crash landed mid-stream"
            );
            sx.recover_shard(crash_shard, &snapshot, log, &records)
                .expect("shard recovery succeeds");
            let (report, hfta) = sx.finish();
            assert_eq!(report.records, records.len() as u64, "seed {seed}");
            assert_eq!(
                hfta.results(),
                want_hfta.results(),
                "seed {seed}, shard {crash_shard}: merged results vs serial no-crash run"
            );
            for q in [s("A"), s("B")] {
                assert_eq!(hfta.totals(q), want_hfta.totals(q), "seed {seed} {q}");
            }
        }
    }
}
