//! Scenario tests for the optimizer: paper-specific situations that the
//! unit tests do not cover — the §2.5 break-even analysis, hardness
//! workarounds, and planner behaviour across regimes.

use msa_core::{AttrSet, CollisionModel, Configuration, LinearModel};
use msa_optimizer::alloc::{allocate_grid, allocate_numeric, two_level_split};
use msa_optimizer::cost::{per_record_cost, ClusterHandling, CostContext};
use msa_optimizer::{epes, greedy_collision, AllocStrategy, Allocation, FeedingGraph};
use msa_stream::DatasetStats;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn ctx<'a>(stats: &'a DatasetStats, model: &'a LinearModel) -> CostContext<'a> {
    let mut c = CostContext::new(stats, model);
    c.clustering = ClusterHandling::None;
    c
}

/// §2.5, Eq. 3: the phantom's benefit changes sign with its collision
/// rate. Sweep the phantom's group count and verify the break-even
/// behaviour: small g_phantom ⇒ beneficial; huge g_phantom ⇒ harmful —
/// and GC mirrors the sign by adopting or rejecting the phantom.
#[test]
fn phantom_breakeven_matches_eq3() {
    let model = LinearModel::paper_no_intercept();
    let queries = [s("A"), s("B"), s("C")];
    let m = 20_000.0;
    let mut adopted_when_cheap = false;
    let mut rejected_when_saturated = false;
    for g_phantom in [800usize, 200_000] {
        let stats = DatasetStats::from_group_counts(
            [
                (s("A"), 400),
                (s("B"), 400),
                (s("C"), 400),
                (s("AB"), g_phantom.min(10_000)),
                (s("AC"), g_phantom.min(10_000)),
                (s("BC"), g_phantom.min(10_000)),
                (s("ABC"), g_phantom),
            ],
            1_000_000,
        );
        let ctx = ctx(&stats, &model);
        let graph = FeedingGraph::new(&queries);
        let trace = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
        let has_abc = trace.final_step().configuration.contains(s("ABC"));
        if g_phantom == 800 && has_abc {
            adopted_when_cheap = true;
        }
        if g_phantom == 200_000 && !has_abc {
            rejected_when_saturated = true;
        }
    }
    assert!(adopted_when_cheap, "cheap phantom should be adopted");
    assert!(
        rejected_when_saturated,
        "saturated phantom should be rejected"
    );
}

/// The closed-form two-level optimum (Eqs. 19–21) is invariant to the
/// feeder's own group count (it cancels out of the optimality
/// conditions) and scales linearly with the budget.
#[test]
fn two_level_split_scaling_properties() {
    let (own1, kids1) = two_level_split(&[900.0, 1600.0], 10_000.0, 1.0, 50.0, 0.354);
    let (own2, kids2) = two_level_split(&[900.0, 1600.0], 20_000.0, 1.0, 50.0, 0.354);
    // Doubling M does NOT simply double children: the c1/c2 trade-off
    // shifts — but totals are conserved and the phantom keeps > half.
    assert!((own1 + kids1.iter().sum::<f64>() - 10_000.0).abs() < 1e-6);
    assert!((own2 + kids2.iter().sum::<f64>() - 20_000.0).abs() < 1e-6);
    assert!(own1 > 5_000.0 && own2 > 10_000.0);
    // Children keep the √w ratio at any budget.
    assert!((kids1[1] / kids1[0] - (1600.0f64 / 900.0).sqrt()).abs() < 1e-9);
    assert!((kids2[1] / kids2[0] - (1600.0f64 / 900.0).sqrt()).abs() < 1e-9);
}

/// Grid ES and the numeric optimum agree on a 3-level chain — the
/// smallest "unsolvable" case (§5.1: order-8 polynomial).
#[test]
fn grid_and_numeric_agree_on_unsolvable_chain() {
    let stats = DatasetStats::from_group_counts(
        [
            (s("A"), 200),
            (s("AB"), 900),
            (s("ABC"), 2500),
            (s("B"), 150),
        ],
        500_000,
    );
    let model = LinearModel::paper_no_intercept();
    let ctx = ctx(&stats, &model);
    // ABC(AB(A B)): a 3-level chain with 4 relations.
    let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB"), s("ABC")]);
    let m = 15_000.0;
    let grid = allocate_grid(&cfg, m, &ctx, 100);
    let numeric = allocate_numeric(&cfg, m, &ctx, 500);
    let cg = per_record_cost(&cfg, &grid, &ctx);
    let cn = per_record_cost(&cfg, &numeric, &ctx);
    assert!(
        (cg - cn).abs() / cg < 0.02,
        "grid {cg} vs numeric {cn} should agree within grid granularity"
    );
}

/// EPES degrades gracefully to the flat configuration when memory is
/// tiny, and spends its budget on phantoms when memory is plentiful.
#[test]
fn epes_tracks_memory_regimes() {
    let stats =
        DatasetStats::from_group_counts([(s("A"), 500), (s("B"), 500), (s("AB"), 2500)], 1_000_000);
    let model = LinearModel::paper_no_intercept();
    let ctx = ctx(&stats, &model);
    let graph = FeedingGraph::new(&[s("A"), s("B")]);
    let tiny = epes(&graph, 600.0, &ctx);
    assert_eq!(
        tiny.configuration.phantoms().count(),
        0,
        "tiny memory: {}",
        tiny.configuration
    );
    let big = epes(&graph, 60_000.0, &ctx);
    assert_eq!(
        big.configuration.phantoms().count(),
        1,
        "big memory: {}",
        big.configuration
    );
}

/// Cost is monotone in memory: more budget never hurts under any
/// allocation strategy (sanity for the M-sweep experiments).
#[test]
fn cost_is_monotone_in_budget() {
    let stats = DatasetStats::from_group_counts(
        [
            (s("AB"), 1846),
            (s("BC"), 1500),
            (s("BD"), 900),
            (s("CD"), 800),
            (s("BCD"), 1800),
            (s("ABCD"), 2837),
        ],
        860_000,
    );
    let model = LinearModel::paper_no_intercept();
    let ctx = ctx(&stats, &model);
    let queries = [s("AB"), s("BC"), s("BD"), s("CD")];
    let cfg = Configuration::with_phantoms(&queries, &[s("ABCD"), s("BCD")]);
    for strat in AllocStrategy::HEURISTICS {
        let mut prev = f64::INFINITY;
        for m in [10_000.0, 20_000.0, 40_000.0, 80_000.0] {
            let alloc = strat.allocate(&cfg, m, &ctx);
            let cost = per_record_cost(&cfg, &alloc, &ctx);
            assert!(
                cost <= prev * 1.001,
                "{} at M={m}: {cost} after {prev}",
                strat.name()
            );
            prev = cost;
        }
    }
}

/// A single query degenerates cleanly: no candidates, all memory to the
/// one table, cost = c1 + x·c2.
#[test]
fn single_query_degenerate_case() {
    let stats = DatasetStats::from_group_counts([(s("AB"), 1000)], 100_000);
    let model = LinearModel::paper_no_intercept();
    let ctx = ctx(&stats, &model);
    let graph = FeedingGraph::new(&[s("AB")]);
    assert!(graph.phantom_candidates().is_empty());
    let trace = greedy_collision(&graph, 9_000.0, &ctx, AllocStrategy::SupernodeLinear);
    let step = trace.final_step();
    assert_eq!(step.configuration.len(), 1);
    // All 9000 words → 3000 buckets (h = 3).
    assert!((step.allocation.buckets(s("AB")) - 3000.0).abs() < 1.0);
    let x = model.rate(1000.0, 3000.0);
    assert!((step.cost - (1.0 + x * 50.0)).abs() < 1e-9);
}

/// Allocation floors: even with absurdly small budgets every table gets
/// its one-bucket minimum and costs remain finite.
#[test]
fn starved_budget_remains_well_defined() {
    let stats = DatasetStats::from_group_counts(
        [(s("A"), 5000), (s("B"), 5000), (s("AB"), 50_000)],
        100_000,
    );
    let model = LinearModel::paper_no_intercept();
    let ctx = ctx(&stats, &model);
    let cfg = Configuration::with_phantoms(&[s("A"), s("B")], &[s("AB")]);
    for strat in AllocStrategy::HEURISTICS {
        let alloc = strat.allocate(&cfg, 10.0, &ctx);
        for (r, b) in alloc.iter() {
            assert!(b >= 1.0, "{} gave {r} {b} buckets", strat.name());
        }
        let cost = per_record_cost(&cfg, &alloc, &ctx);
        assert!(cost.is_finite());
        // All rates clamp at 1: cost = c1·(1 + 2·x_AB) + 2·x·x·c2 = 3 + 100.
        assert!(cost <= 3.0 + 100.0 + 1e-9);
    }
}

/// Explicit Allocation arithmetic used by the peak-load repairs.
#[test]
fn allocation_space_accounting() {
    let mut a = Allocation::default();
    a.set(s("ABCD"), 100.0); // h = 5 → 500 words
    a.set(s("AB"), 200.0); // h = 3 → 600 words
    assert_eq!(a.space_words(), 1100.0);
    assert_eq!(a.space_words_of(s("ABCD")), 500.0);
    let scaled = a.scaled(0.5);
    assert_eq!(scaled.space_words(), 550.0);
}
