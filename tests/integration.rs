//! Cross-crate integration tests: trace generation → statistics →
//! planning → physical plan → execution → exact results, plus
//! model-vs-measurement agreement.

use msa_core::{
    AttrSet, Configuration, CostParams, EngineOptions, Executor, LinearModel, MultiAggregator,
    Plan, Record,
};
use msa_optimizer::cost::{per_record_cost, CostContext};
use msa_optimizer::{greedy_collision, AllocStrategy, FeedingGraph};
use msa_stream::hash::FastMap;
use msa_stream::{
    ClusteredStreamBuilder, DatasetStats, GroupKey, PacketTraceBuilder, TraceProfile,
    UniformStreamBuilder,
};

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
    let mut m = FastMap::default();
    for r in records {
        *m.entry(r.project(q)).or_insert(0) += 1;
    }
    m
}

fn small_trace() -> msa_stream::gen::GeneratedStream {
    PacketTraceBuilder::new(TraceProfile::paper_scaled(0.02))
        .seed(77)
        .build()
}

#[test]
fn full_pipeline_on_packet_trace_is_exact() {
    let trace = small_trace();
    let queries = vec![s("AB"), s("BC"), s("BD"), s("CD")];
    let mut engine = MultiAggregator::new(queries.clone(), EngineOptions::new(3_000.0));
    for r in &trace.records {
        engine.push(*r);
    }
    let out = engine.finish();
    assert_eq!(out.report.records as usize, trace.len());
    for q in queries {
        assert_eq!(out.totals(q), exact(&trace.records, q), "query {q}");
    }
    // The engine must actually have chosen phantoms on clustered data
    // with a reasonable budget.
    let plan = out.final_plan.expect("planned");
    assert!(
        plan.configuration.phantoms().count() >= 1,
        "expected phantoms in {}",
        plan.configuration
    );
}

#[test]
fn phantoms_beat_no_phantoms_on_clustered_data_measured() {
    // The paper's headline claim (Figs. 13b/14b), verified end-to-end
    // with measured costs.
    let trace = small_trace();
    let stats = DatasetStats::compute(&trace.records, s("ABCD"));
    let model = LinearModel::paper_no_intercept();
    let ctx = CostContext::new(&stats, &model);
    let queries = vec![s("AB"), s("BC"), s("BD"), s("CD")];
    let graph = FeedingGraph::new(&queries);
    let m = 2_000.0;

    let gcsl = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
    let chosen = gcsl.final_step();

    let flat = Configuration::from_queries(&queries);
    let flat_alloc = AllocStrategy::SupernodeLinear.allocate(&flat, m, &ctx);

    let run = |cfg: &Configuration, alloc: &msa_optimizer::Allocation| -> f64 {
        let plan = Plan {
            configuration: cfg.clone(),
            allocation: alloc.clone(),
            predicted_cost: 0.0,
            predicted_update_cost: 0.0,
        };
        let mut ex =
            Executor::new(plan.to_physical(), CostParams::paper(), u64::MAX, 9).discard_results();
        ex.run(&trace.records);
        ex.report().per_record_cost()
    };
    let with = run(&chosen.configuration, &chosen.allocation);
    let without = run(&flat, &flat_alloc);
    assert!(
        with < without * 0.7,
        "phantom cost {with} should be well below flat cost {without}"
    );
}

#[test]
fn predicted_cost_tracks_measured_cost() {
    // Model validation (§6.3.2): on uniform data the Eq. 7 prediction
    // should be within a small factor of the measured per-record cost.
    let stream = UniformStreamBuilder::new(4, 800)
        .records(80_000)
        .seed(5)
        .build();
    let stats = DatasetStats::compute(&stream.records, s("ABCD"));
    let model = LinearModel::paper_no_intercept();
    let mut ctx = CostContext::new(&stats, &model);
    ctx.clustering = msa_core::ClusterHandling::None;
    let queries = vec![s("AB"), s("CD")];
    let graph = FeedingGraph::new(&queries);

    for m in [2_000.0, 8_000.0] {
        let trace = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
        let step = trace.final_step();
        let predicted = per_record_cost(&step.configuration, &step.allocation, &ctx);
        let plan = Plan {
            configuration: step.configuration.clone(),
            allocation: step.allocation.clone(),
            predicted_cost: predicted,
            predicted_update_cost: 0.0,
        };
        let mut ex =
            Executor::new(plan.to_physical(), CostParams::paper(), u64::MAX, 3).discard_results();
        ex.run(&stream.records);
        let measured = ex.report().per_record_cost();
        let ratio = predicted / measured;
        assert!(
            (0.4..2.5).contains(&ratio),
            "M={m}: predicted {predicted} vs measured {measured} (ratio {ratio})"
        );
    }
}

#[test]
fn physical_plan_respects_memory_budget() {
    let trace = small_trace();
    let stats = DatasetStats::compute(&trace.records, s("ABCD"));
    let queries = vec![s("AB"), s("BC"), s("BD"), s("CD")];
    for m in [1_000.0, 2_000.0, 4_000.0] {
        let plan = msa_optimizer::planner::plan_gcsl(&queries, &stats, m);
        let words = plan.to_physical().space_words() as f64;
        assert!(
            words <= m * 1.05 + 64.0,
            "M={m}: physical plan uses {words} words"
        );
    }
}

#[test]
fn epoch_results_match_per_epoch_ground_truth() {
    // Build a 3-epoch stream and verify per-epoch (not just total)
    // counts against a naive computation.
    let mut records = Vec::new();
    for epoch in 0..3u64 {
        for i in 0..5_000u32 {
            records.push(Record::new(
                &[i % 37, i % 11, 0, 0],
                epoch * 1_000_000 + (i as u64) * 150,
            ));
        }
    }
    let mut opts = EngineOptions::new(1_500.0);
    opts.epoch_micros = 1_000_000;
    opts.bootstrap_records = 1_000;
    let q = s("AB");
    let mut engine = MultiAggregator::new(vec![q], opts);
    for r in &records {
        engine.push(*r);
    }
    let out = engine.finish();
    for epoch in 0..3u64 {
        let slice: Vec<Record> = records
            .iter()
            .copied()
            .filter(|r| r.ts_micros / 1_000_000 == epoch)
            .collect();
        let want = exact(&slice, q);
        let mut got: FastMap<GroupKey, u64> = FastMap::default();
        for res in out.results.iter().filter(|r| r.epoch == epoch) {
            for (k, v) in res.counts() {
                *got.entry(k).or_insert(0) += v;
            }
        }
        assert_eq!(got, want, "epoch {epoch}");
    }
}

#[test]
fn executor_flush_cost_tracks_eq8_prediction() {
    // End-of-epoch model vs measured flush cost, single epoch, flat
    // configuration (where Eq. 8 is exact up to occupancy).
    let stream = UniformStreamBuilder::new(2, 400)
        .records(50_000)
        .seed(8)
        .build();
    let stats = DatasetStats::compute(&stream.records, s("AB"));
    let model = LinearModel::paper_no_intercept();
    let mut ctx = CostContext::new(&stats, &model);
    ctx.clustering = msa_core::ClusterHandling::None;
    let cfg = Configuration::from_queries(&[s("A"), s("B")]);
    let alloc = AllocStrategy::SupernodeLinear.allocate(&cfg, 4_000.0, &ctx);
    let predicted = msa_optimizer::cost::end_of_epoch_cost(&cfg, &alloc, &ctx);

    let plan = Plan {
        configuration: cfg,
        allocation: alloc,
        predicted_cost: 0.0,
        predicted_update_cost: predicted,
    };
    let mut ex = Executor::new(plan.to_physical(), CostParams::paper(), u64::MAX, 4);
    ex.run(&stream.records);
    let (report, _) = ex.finish();
    let measured = report.flush_cost();
    // Eq. 8 assumes full tables (M_R entries); with 400 groups per
    // attribute every bucket of the small tables is occupied, so the
    // prediction should be close.
    let ratio = predicted / measured;
    assert!(
        (0.5..2.0).contains(&ratio),
        "predicted {predicted} vs measured {measured}"
    );
}

#[test]
fn clustered_data_lowers_measured_collision_rates() {
    // Eq. 15's physical basis: same groups, same table, but flows make
    // collisions rarer per record.
    let clustered = ClusteredStreamBuilder::new(2, 500)
        .records(60_000)
        .flow_lengths(msa_stream::FlowLengthDistribution::Constant { len: 20 })
        .active_flows(8)
        .seed(3)
        .build();
    let uniform = UniformStreamBuilder::new(2, 500)
        .records(60_000)
        .seed(3)
        .build();
    let ab = s("AB");
    let measure = |records: &[Record]| -> f64 {
        msa_gigascope::table::measure_collision_rate(
            records.iter().map(|r| r.project(ab)),
            ab,
            250,
            17,
        )
    };
    let x_clustered = measure(&clustered.records);
    let x_uniform = measure(&uniform.records);
    assert!(
        x_clustered < x_uniform / 2.0,
        "clustered {x_clustered} vs uniform {x_uniform}"
    );
}

#[test]
fn sql_frontend_end_to_end() {
    // Parse the paper's query style, run the engine, verify exactness
    // and the shared WHERE filter.
    let schema = msa_stream::Schema::packet_headers();
    let trace = small_trace();
    let sql = [
        "select srcIP, srcPort, count(*) from packets \
         where dstPort >= 2 group by srcIP, srcPort, time/60",
        "select dstIP, dstPort, count(*) from packets \
         where dstPort >= 2 group by dstIP, dstPort, time/60",
    ];
    let mut opts = msa_core::EngineOptions::new(3_000.0);
    opts.bootstrap_records = 2_000;
    let mut engine = MultiAggregator::from_sql(&sql, &schema, opts).unwrap();
    for r in &trace.records {
        engine.push(*r);
    }
    let out = engine.finish();

    let filtered: Vec<Record> = trace
        .records
        .iter()
        .copied()
        .filter(|r| r.attrs[3] >= 2)
        .collect();
    assert!(out.report.filtered_out > 0, "filter must reject something");
    assert_eq!(
        out.report.records - out.report.filtered_out,
        filtered.len() as u64
    );
    for q in [s("AB"), s("CD")] {
        assert_eq!(out.totals(q), exact(&filtered, q), "query {q}");
    }
}
