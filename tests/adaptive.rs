//! Adaptive-runtime battery: the drift → re-plan → hot-swap loop
//! against the static baseline, across the full deployment matrix
//! {static, adaptive} × {drift kinds} × {shards} × {crash during swap},
//! asserting at every cell:
//!
//! * **determinism** — two runs of the cell produce bit-identical
//!   merged [`RunReport`]s, result lists and swap ledgers, whatever
//!   the scheduler or the swap transaction did;
//! * **swap transparency** — lossless and guard-off, every cell's
//!   closed-epoch result list is bit-identical to the static
//!   single-shard baseline and every per-group total equals a naive
//!   recount of the drifted stream: the outputs differ only in the
//!   `replans_committed` / `replans_rolled_back` ledger;
//! * **crash atomicity** — a crash injected at any armed point inside
//!   the swap transaction recovers to the old plan
//!   (`RolledBackAfterCrash`) or the new plan (`CommittedAfterCrash`),
//!   never a torn mixture — the recovered cell still reproduces the
//!   baseline results bit-exactly;
//! * **forced rollback** — an injected validation failure rolls the
//!   transaction back, ticks `replans_rolled_back`, and leaves the
//!   deployment byte-for-byte on the old plan;
//! * **acceptance drill** — under a hotspot migration the detector
//!   re-plans and commits a swap after which the observed collision
//!   rates sit back within the cost model's drift margin.
//!
//! `MSA_SCALE` (0, 1] shrinks the trace and trims the matrix so CI can
//! run a reduced battery; unset means the full matrix.

use msa_core::{
    AdaptivePolicy, AdaptiveRuntime, AttrSet, DatasetStats, DriftKind, DriftPlan, GuardPolicy,
    MsaError, Record, ReplanTrigger, RuntimeOptions, RuntimeOutput, RuntimePolicy, SwapCrashPoint,
    SwapFault, SwapOutcome,
};
use msa_stream::hash::FastMap;
use msa_stream::{GroupKey, UniformStreamBuilder};

const EPOCH: u64 = 1_000_000;
const SEED: u64 = 0xADAB;
const M_WORDS: f64 = 10_000.0;

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn scale() -> f64 {
    std::env::var("MSA_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 1.0)
}

fn queries() -> Vec<AttrSet> {
    vec![s("A"), s("B")]
}

/// The statistics belief the runtime plans with — deliberately the
/// *organic* stream's profile, which every drift kind then invalidates.
fn believed_stats() -> DatasetStats {
    DatasetStats::from_group_counts([(s("A"), 120), (s("B"), 120), (s("AB"), 2_000)], 100_000)
}

/// Organic 6-epoch stream; the drift plans disturb epochs [2, 5).
fn base_stream(scale: f64) -> Vec<Record> {
    let records = ((12_000.0 * scale) as usize).max(1_500);
    UniformStreamBuilder::new(4, 120)
        .records(records)
        .duration_secs(6.0)
        .seed(SEED)
        .build()
        .records
}

/// The drift columns of the matrix: each nonstationarity the detector
/// must survive (and the swap must stay transparent under).
fn drift_columns() -> Vec<(&'static str, DriftPlan)> {
    vec![
        (
            "hotspot-migration",
            DriftPlan::new(
                0xD201,
                DriftKind::HotspotMigration {
                    share_pct: 70,
                    period_epochs: 2,
                },
                2,
                3,
            ),
        ),
        (
            "cardinality-ramp",
            DriftPlan::new(
                0xD202,
                DriftKind::CardinalityRamp { attr: 0, factor: 6 },
                2,
                3,
            ),
        ),
        (
            "query-mix-shift",
            DriftPlan::new(0xD203, DriftKind::QueryMixShift { rotation: 1 }, 2, 3),
        ),
    ]
}

fn shard_counts(scale: f64) -> Vec<usize> {
    if scale < 0.5 {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    }
}

/// The crash columns: `None` = clean swap, otherwise the armed point
/// inside the transaction.
fn crash_columns() -> Vec<(&'static str, Option<SwapCrashPoint>)> {
    vec![
        ("no-crash", None),
        ("after-quiesce", Some(SwapCrashPoint::AfterQuiesce)),
        ("before-commit", Some(SwapCrashPoint::BeforeCommit)),
        ("after-commit", Some(SwapCrashPoint::AfterCommit)),
    ]
}

fn cell_options(policy: RuntimePolicy, shards: usize) -> RuntimeOptions {
    let mut opts = RuntimeOptions::new(M_WORDS);
    opts.seed = SEED;
    opts.shards = shards;
    opts.policy = policy;
    // Crash drills recover from the boundary checkpoint; durability is
    // transparent to the outputs (tests/differential.rs proves it).
    opts.durable = true;
    opts
}

/// One cell: run two organic epochs, stage a swap (with the cell's
/// fault armed), and stream the rest. Under the adaptive policy the
/// detector may already have staged its own transaction — the armed
/// fault then hits that one, which is just as good a crash target.
fn run_cell(
    policy: RuntimePolicy,
    shards: usize,
    crash: Option<SwapCrashPoint>,
    records: &[Record],
) -> RuntimeOutput {
    let mut rt = AdaptiveRuntime::new(queries(), believed_stats(), cell_options(policy, shards))
        .expect("cell deploys");
    let split = records.partition_point(|r| r.ts_micros / EPOCH < 2);
    rt.run(&records[..split]).expect("organic prefix runs");
    if let Some(point) = crash {
        rt.with_swap_fault(SwapFault::crash_at(point));
    }
    match rt.request_replan() {
        Ok(()) | Err(MsaError::MidSwapMutation) => {}
        Err(e) => panic!("request_replan: {e}"),
    }
    rt.run(&records[split..]).expect("drifted suffix runs");
    rt.finish()
}

fn exact(records: &[Record], q: AttrSet) -> FastMap<GroupKey, u64> {
    let mut m = FastMap::default();
    for r in records {
        *m.entry(r.project(q)).or_insert(0) += 1;
    }
    m
}

/// The full matrix. Every cell is deterministic across two runs, and
/// — lossless, guard-off — bit-identical to the static single-shard
/// baseline in its closed-epoch outputs, whatever the swap did.
#[test]
fn matrix_swaps_are_transparent_and_crash_atomic() {
    let scale = scale();
    let base = base_stream(scale);
    for (dname, dplan) in drift_columns() {
        let records = dplan.apply_to_stream(&base, EPOCH);
        assert_eq!(records.len(), base.len(), "{dname}: drift preserves count");
        // Static single-shard clean-swap cell: the baseline every other
        // cell must reproduce.
        let baseline = run_cell(RuntimePolicy::frozen(), 1, None, &records);
        assert_eq!(baseline.report.records, records.len() as u64);
        for q in queries() {
            assert_eq!(
                baseline.hfta.totals(q),
                exact(&records, q),
                "{dname}: baseline totals for {q}"
            );
        }
        for (pname, policy) in [
            ("static", RuntimePolicy::frozen()),
            ("adaptive", RuntimePolicy::default()),
        ] {
            for &n in &shard_counts(scale) {
                for (cname, crash) in crash_columns() {
                    let label = format!("{dname}/{pname}/{n} shards/{cname}");
                    let out1 = run_cell(policy, n, crash, &records);
                    let out2 = run_cell(policy, n, crash, &records);
                    // Determinism: bit-identity across two runs —
                    // report, results AND the swap ledger.
                    assert_eq!(out1.report, out2.report, "{label}: reports");
                    assert_eq!(
                        out1.hfta.results(),
                        out2.hfta.results(),
                        "{label}: results across runs"
                    );
                    assert_eq!(out1.replans, out2.replans, "{label}: replan events");
                    // Swap transparency: closed-epoch outputs equal the
                    // static baseline — the cells differ only in their
                    // replans_committed / replans_rolled_back ledger.
                    assert_eq!(out1.report.records, records.len() as u64, "{label}");
                    assert_eq!(
                        out1.hfta.results(),
                        baseline.hfta.results(),
                        "{label}: results vs baseline"
                    );
                    // Crash atomicity: the faulted transaction lands on
                    // the old plan or the new plan, never in between —
                    // and the ledger records which.
                    let first = out1.replans.first().expect("cell executed a swap");
                    match crash {
                        None => {}
                        Some(SwapCrashPoint::AfterQuiesce) | Some(SwapCrashPoint::BeforeCommit) => {
                            assert_eq!(
                                first.report.outcome,
                                SwapOutcome::RolledBackAfterCrash,
                                "{label}"
                            );
                            assert!(out1.report.replans_rolled_back >= 1, "{label}");
                        }
                        Some(SwapCrashPoint::AfterCommit) => {
                            assert_eq!(
                                first.report.outcome,
                                SwapOutcome::CommittedAfterCrash,
                                "{label}"
                            );
                            assert!(out1.report.replans_committed >= 1, "{label}");
                        }
                    }
                }
            }
        }
    }
}

/// Forced-rollback drill: an injected validation failure must roll the
/// transaction back, tick the ledger, back the detector off, and leave
/// the deployment byte-for-byte on the old plan — proven by comparing
/// against the same run never staging a swap at all.
#[test]
fn forced_rollback_leaves_the_old_plan_bit_exact() {
    let scale = scale();
    let base = base_stream(scale);
    let dplan = DriftPlan::new(
        0xD204,
        DriftKind::HotspotMigration {
            share_pct: 70,
            period_epochs: 2,
        },
        2,
        3,
    );
    let records = dplan.apply_to_stream(&base, EPOCH);
    for &n in &shard_counts(scale) {
        // The untouched run: frozen policy, no replan requested.
        let mut plain = AdaptiveRuntime::new(
            queries(),
            believed_stats(),
            cell_options(RuntimePolicy::frozen(), n),
        )
        .expect("plain deploys");
        plain.run(&records).expect("plain runs");
        let want = plain.finish();
        assert!(want.replans.is_empty(), "{n} shards: no swap in baseline");
        // The drilled run: stage a swap whose handoff validation is
        // rigged to fail.
        let split = records.partition_point(|r| r.ts_micros / EPOCH < 2);
        let mut rt = AdaptiveRuntime::new(
            queries(),
            believed_stats(),
            cell_options(RuntimePolicy::frozen(), n),
        )
        .expect("drill deploys");
        rt.run(&records[..split]).expect("prefix runs");
        rt.with_swap_fault(SwapFault::failing_validation());
        rt.request_replan().expect("stages");
        rt.run(&records[split..]).expect("suffix runs");
        assert_eq!(rt.queries(), &queries()[..], "{n} shards: queries kept");
        let out = rt.finish();
        assert_eq!(out.replans.len(), 1, "{n} shards");
        assert!(
            matches!(out.replans[0].report.outcome, SwapOutcome::RolledBack(_)),
            "{n} shards: {:?}",
            out.replans[0].report.outcome
        );
        assert_eq!(out.report.replans_committed, 0, "{n} shards");
        assert_eq!(out.report.replans_rolled_back, 1, "{n} shards");
        // Byte-for-byte the old plan's run — only the rollback ledger
        // (and the staged transaction's epoch) distinguish the reports.
        assert_eq!(out.hfta.results(), want.hfta.results(), "{n} shards");
        assert_eq!(out.report.records, want.report.records, "{n} shards");
        let mut ledgerless = out.report.clone();
        ledgerless.replans_rolled_back = 0;
        assert_eq!(ledgerless, want.report, "{n} shards: report modulo ledger");
    }
}

/// Acceptance drill: the deployment plans a phantom for the organic
/// stream, then a hotspot migration arrives — a heavy group whose
/// eviction ping-pong drives the phantom table's observed collision
/// rate far off the cost model's prediction. The detector must notice
/// from live telemetry, re-plan in the background against refined
/// statistics, commit the swap at an epoch boundary — and afterwards
/// the observed collision rates must sit back within the cost model's
/// drift margin. Run twice for bit-identity.
///
/// The drill is fixed-size (it finishes in milliseconds): scaling the
/// record count would change the per-epoch collision dynamics the
/// scenario is built around, unlike the matrix tests where `MSA_SCALE`
/// only trims coverage.
///
/// Phase A calibrates the model's slope µ against an organic prefix
/// (the dual of statistics refinement — see
/// `msa_core::adaptive::calibration_points`); the drill then deploys
/// with the calibrated model and `recalibrate: false`, so the detector
/// must answer the hotspot with a *re-plan*, not by bending µ to
/// explain the telemetry away.
#[test]
fn hotspot_drill_replans_and_lands_within_the_margin() {
    const DRILL_M_WORDS: f64 = 8_000.0;
    let organic = UniformStreamBuilder::new(2, 4_000)
        .records(8_000)
        .duration_secs(10.0)
        .seed(SEED ^ 0x77)
        .attr_domains(vec![80, 80])
        .build()
        .records;
    let records = DriftPlan::new(
        0xD205,
        DriftKind::HotspotMigration {
            share_pct: 70,
            period_epochs: 3,
        },
        1,
        9,
    )
    .apply_to_stream(&organic, EPOCH);
    // The belief is the organic first epoch's true profile — accurate
    // until the hotspot arrives, so any committed swap is the drift's.
    let first_epoch = &organic[..organic.partition_point(|r| r.ts_micros / EPOCH < 1)];
    let stats = DatasetStats::compute(first_epoch, s("AB"));
    let policy = RuntimePolicy {
        adaptive: AdaptivePolicy {
            check_every_epochs: 1,
            drift_threshold: 0.5,
            min_probes: 300,
        },
        improvement_margin: 0.01,
        backoff_epochs: 2,
        recalibrate: false,
    };
    // Phase A: fit µ through the intercept from the organic prefix's
    // live table telemetry, under the same plan the drill will deploy.
    let calibrated = {
        let mut copts = RuntimeOptions::new(DRILL_M_WORDS);
        copts.seed = SEED;
        copts.policy = RuntimePolicy::frozen();
        let mut cal =
            AdaptiveRuntime::new(queries(), stats.clone(), copts).expect("calibration deploys");
        cal.run(first_epoch).expect("calibration prefix runs");
        let pts = msa_core::adaptive::calibration_points(
            cal.stats(),
            &cal.current_plan().configuration,
            &cal.current_plan().allocation,
            &cal.executor().table_stats(),
            &policy.adaptive,
        );
        assert!(!pts.is_empty(), "calibration needs live telemetry");
        msa_core::LinearModel::fit_through_intercept(0.0, pts)
    };
    // Phase B: deploy with the calibrated model and stream the drill.
    let drill = || {
        let mut opts = RuntimeOptions::new(DRILL_M_WORDS);
        opts.seed = SEED;
        opts.policy = policy;
        opts.model = calibrated;
        let mut rt = AdaptiveRuntime::new(queries(), stats.clone(), opts).expect("drill deploys");
        assert!(
            rt.current_plan().configuration.contains(s("AB")),
            "the organic plan must instantiate the AB phantom"
        );
        rt.run(&records).expect("drill runs");
        let drift_after = rt.current_drift();
        (drift_after, rt.finish())
    };
    let (drift_after, out) = drill();
    let committed: Vec<_> = out
        .replans
        .iter()
        .filter(|e| e.trigger == ReplanTrigger::Drift && e.report.outcome.committed())
        .collect();
    assert!(
        !committed.is_empty(),
        "the detector must commit a drift-triggered swap; events: {:?}",
        out.replans
    );
    assert!(committed[0].drift > policy.adaptive.drift_threshold);
    assert!(committed[0].improvement > policy.improvement_margin);
    assert!(out.report.replans_committed >= 1);
    // Post-swap, the live collision telemetry agrees with the re-planned
    // cost model again: the deviation sits inside the margin that would
    // trigger another re-plan.
    assert!(
        drift_after <= policy.adaptive.drift_threshold,
        "post-swap collision rates must sit within the drift margin, got {drift_after}"
    );
    // Exactness is untouched by however many swaps the loop committed.
    assert_eq!(out.report.records, records.len() as u64);
    for q in queries() {
        assert_eq!(out.hfta.totals(q), exact(&records, q), "{q}");
    }
    // Two-run bit-identity of the whole adaptive trajectory.
    let (drift_again, out2) = drill();
    assert_eq!(out.report, out2.report);
    assert_eq!(out.hfta.results(), out2.hfta.results());
    assert_eq!(out.replans, out2.replans);
    assert!((drift_after - drift_again).abs() == 0.0, "drift is seeded");
}

/// The degradation promise survives a swap: with the overload guard
/// shedding under a drifted stream, the bias identity
/// `observed = records + count_bias(q)` holds exactly through a
/// committed hot-swap, and two runs stay bit-identical.
#[test]
fn guard_bounds_survive_a_swap_exactly() {
    let scale = scale();
    let base = base_stream(scale);
    let dplan = DriftPlan::new(
        0xD206,
        DriftKind::CardinalityRamp { attr: 1, factor: 6 },
        2,
        3,
    );
    let records = dplan.apply_to_stream(&base, EPOCH);
    let run = |n: usize| {
        let mut opts = cell_options(RuntimePolicy::frozen(), n);
        opts.guard = Some(GuardPolicy::new(3_000.0));
        let mut rt =
            AdaptiveRuntime::new(queries(), believed_stats(), opts).expect("guarded deploys");
        let split = records.partition_point(|r| r.ts_micros / EPOCH < 2);
        rt.run(&records[..split]).expect("prefix runs");
        rt.request_replan().expect("stages");
        rt.run(&records[split..]).expect("suffix runs");
        rt.finish()
    };
    for &n in &shard_counts(scale) {
        let out = run(n);
        assert_eq!(out.report.replans_committed, 1, "{n} shards");
        assert_eq!(out.report.records, records.len() as u64, "{n} shards");
        // The bias ledger carried through the swap bit-exactly: the
        // identity still closes over the *whole* run, swap included.
        for q in queries() {
            let observed: u64 = out.hfta.totals(q).values().sum();
            assert_eq!(
                observed as i64,
                records.len() as i64 + out.report.count_bias(q),
                "{n} shards: bias identity through the swap for {q}"
            );
        }
        let again = run(n);
        assert_eq!(out.report, again.report, "{n} shards: reports");
        assert_eq!(
            out.hfta.results(),
            again.hfta.results(),
            "{n} shards: results"
        );
    }
}
