//! Differential vectorization battery: the chunked columnar LFTA path
//! versus the scalar oracle.
//!
//! The same seeded trace is replayed through scalar ingestion and
//! through the chunked [`Ingest::offer_chunk`] path across the matrix
//! {chunk sizes 1/7/64/1024} × {shard counts} × {loss, dup, burst
//! faults} × {crash points}, asserting at every cell that the chunked
//! path is **bit-identical** to the scalar one:
//!
//! * identical [`RunReport`]s (every counter, cost trace and ledger);
//! * identical per-epoch HFTA result lists and per-group totals;
//! * identical guaranteed error-bound reports ([`BoundsReport`]);
//! * identical durable snapshots, byte-for-byte through the
//!   [`ShardedSnapshot`] encoding;
//! * identical crash/recovery outcomes when a shard dies mid-chunk.
//!
//! Chunking is pure batching: the executor re-derives epoch boundaries
//! from the timestamp column, so no chunk size, shard count, fault or
//! crash point may shift a single PRNG draw, sequence number or WAL
//! entry. `MSA_SCALE` (0, 1] shrinks the trace and trims the matrix.

use msa_core::{
    AttrSet, Burst, CostParams, CrashPlan, Executor, FaultPlan, GuardPolicy, Ingest, IngestMode,
    Record, RecordChunk, RunReport, ShardedExecutor, ShardedSnapshot, ValueSource,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_gigascope::Hfta;
use msa_stream::UniformStreamBuilder;

const EPOCH: u64 = 500_000;
const SEED: u64 = 0xC401;
const GUARD_BUDGET: f64 = 3_000.0;
const CHUNK_SIZES: [usize; 4] = [1, 7, 64, 1024];

fn s(x: &str) -> AttrSet {
    AttrSet::parse(x).unwrap()
}

fn scale() -> f64 {
    std::env::var("MSA_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.01, 1.0)
}

fn shard_counts(scale: f64) -> Vec<usize> {
    if scale < 0.5 {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

fn chunk_sizes(scale: f64) -> Vec<usize> {
    if scale < 0.5 {
        vec![1, 7, 1024]
    } else {
        CHUNK_SIZES.to_vec()
    }
}

/// AB phantom feeding A and B query tables (the differential plan).
fn phantom_plan() -> PhysicalPlan {
    PhysicalPlan::new(vec![
        PlanNode {
            attrs: s("AB"),
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: s("A"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: s("B"),
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])
    .unwrap()
}

fn stream(scale: f64) -> Vec<Record> {
    let records = ((6_000.0 * scale) as usize).max(800);
    UniformStreamBuilder::new(4, 120)
        .records(records)
        .duration_secs(6.0)
        .seed(SEED)
        .build()
        .records
}

fn fault_columns() -> Vec<(&'static str, Option<FaultPlan>)> {
    vec![
        ("no-fault", None),
        (
            "loss",
            Some(FaultPlan::new(0xC4F1).with_eviction_loss(0.10)),
        ),
        (
            "duplication",
            Some(FaultPlan::new(0xC4F2).with_eviction_duplication(0.05)),
        ),
        (
            "burst",
            Some(FaultPlan::new(0xC4F3).with_burst(Burst {
                start_epoch: 2,
                epochs: 2,
                amplification: 3,
                fresh_groups: false,
            })),
        ),
    ]
}

fn disturbed(base: &[Record], faults: &Option<FaultPlan>) -> Vec<Record> {
    match faults {
        Some(f) => f.apply_to_stream(base, EPOCH),
        None => base.to_vec(),
    }
}

fn build_serial(faults: &Option<FaultPlan>, guard_on: bool) -> Executor {
    let mut ex = Executor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED)
        .with_value_source(ValueSource::Attr(2));
    if let Some(f) = faults {
        ex = ex.with_faults(f);
    }
    if guard_on {
        ex = ex.with_guard(GuardPolicy::new(GUARD_BUDGET));
    }
    ex
}

fn build_sharded(
    n: usize,
    faults: &Option<FaultPlan>,
    guard_on: bool,
    durable: bool,
    ingest: IngestMode,
) -> ShardedExecutor {
    let mut sx = ShardedExecutor::new(phantom_plan(), CostParams::paper(), EPOCH, SEED, n)
        .unwrap()
        .with_value_source(ValueSource::Attr(2))
        .with_ingest(ingest);
    if let Some(f) = faults {
        sx = sx.with_faults(f);
    }
    if guard_on {
        sx = sx.with_guard(GuardPolicy::new(GUARD_BUDGET));
    }
    if durable {
        sx = sx.with_durability();
    }
    sx
}

/// Everything a cell can observe from a finished serial executor.
fn finish_serial(ex: Executor) -> (RunReport, Hfta, msa_core::BoundsReport) {
    let bounds = ex.bounds();
    let (report, hfta) = ex.finish();
    (report, hfta, bounds)
}

/// Serial cells: {chunk size} × {fault} × {guard}, chunked through the
/// [`Ingest`] trait versus the scalar oracle through the same trait.
#[test]
fn serial_chunked_matches_scalar_oracle_bit_for_bit() {
    let scale = scale();
    let base = stream(scale);
    for (fname, faults) in fault_columns() {
        let records = disturbed(&base, &faults);
        for guard_on in [false, true] {
            let mut oracle = build_serial(&faults, guard_on);
            for r in &records {
                Ingest::offer(&mut oracle, r);
            }
            let (want_report, want_hfta, want_bounds) = finish_serial(oracle);
            for &size in &chunk_sizes(scale) {
                let label = format!("chunk={size}/{fname}/guard={guard_on}");
                let mut chunked = build_serial(&faults, guard_on);
                for batch in records.chunks(size) {
                    Ingest::offer_chunk(&mut chunked, &RecordChunk::from_records(batch));
                }
                let (got_report, got_hfta, got_bounds) = finish_serial(chunked);
                assert_eq!(got_report, want_report, "{label}: report");
                assert_eq!(got_hfta.results(), want_hfta.results(), "{label}: results");
                assert_eq!(got_bounds, want_bounds, "{label}: bounds");
            }
        }
    }
}

/// Chunk boundaries may land anywhere — including mid-epoch. Feeding
/// the whole trace as one giant chunk exercises multi-epoch segmenting
/// inside a single `offer_chunk` call.
#[test]
fn one_giant_chunk_spans_every_epoch_boundary() {
    let base = stream(scale());
    let mut oracle = build_serial(&None, false);
    oracle.run(&base);
    let (want_report, want_hfta, _) = finish_serial(oracle);
    let mut chunked = build_serial(&None, false);
    chunked.offer_chunk(&RecordChunk::from_records(&base));
    let (got_report, got_hfta, _) = finish_serial(chunked);
    assert_eq!(got_report, want_report);
    assert_eq!(got_hfta.results(), want_hfta.results());
}

/// Sharded cells: {chunk size} × {shards} × {fault} × {guard}. The
/// chunked feed (chunk-at-a-time partitioning, per-shard re-chunking)
/// must merge to the exact scalar-feed outputs, and two chunked
/// threaded runs must agree bit-for-bit with each other.
#[test]
fn sharded_chunked_matches_scalar_feed_across_matrix() {
    let scale = scale();
    let base = stream(scale);
    for (fname, faults) in fault_columns() {
        let records = disturbed(&base, &faults);
        for guard_on in [false, true] {
            for &n in &shard_counts(scale) {
                let mut scalar = build_sharded(n, &faults, guard_on, false, IngestMode::Scalar);
                scalar.run(&records);
                let want_bounds = scalar.bounds();
                let (want_report, want_hfta) = scalar.finish();
                for &size in &chunk_sizes(scale) {
                    let label = format!("{n} shards/chunk={size}/{fname}/guard={guard_on}");
                    let mode = IngestMode::Chunked { size };
                    let run = || {
                        let mut sx = build_sharded(n, &faults, guard_on, false, mode);
                        sx.run(&records);
                        let bounds = sx.bounds();
                        let (report, hfta) = sx.finish();
                        (report, hfta, bounds)
                    };
                    let (r1, h1, b1) = run();
                    let (r2, h2, b2) = run();
                    assert_eq!(r1, r2, "{label}: two chunked runs");
                    assert_eq!(h1.results(), h2.results(), "{label}: two chunked runs");
                    assert_eq!(b1, b2, "{label}: two chunked runs");
                    assert_eq!(r1, want_report, "{label}: report vs scalar");
                    assert_eq!(h1.results(), want_hfta.results(), "{label}: results");
                    assert_eq!(b1, want_bounds, "{label}: bounds vs scalar");
                }
            }
        }
    }
}

/// Crash cells: a shard dies at an armed point while fed chunked; its
/// durable artifacts, the recovery, and the recovered outputs must all
/// be bit-identical to the scalar-feed crash run — and to the no-crash
/// baseline after recovery.
#[test]
fn crashed_chunked_shards_recover_identically_to_scalar() {
    let scale = scale();
    let base = stream(scale);
    let sizes = if scale < 0.5 { vec![7] } else { vec![7, 1024] };
    for (fname, faults) in fault_columns() {
        let records = disturbed(&base, &faults);
        for &n in &shard_counts(scale) {
            let crash_shard = n - 1;
            let probe = build_sharded(n, &faults, false, true, IngestMode::Scalar);
            let part_len = probe.partition(&records)[crash_shard].len() as u64;
            // No-crash durable chunked baseline, with snapshot framing.
            let mut baseline =
                build_sharded(n, &faults, false, true, IngestMode::Chunked { size: 64 });
            baseline.run(&records);
            let snap = baseline
                .durable_snapshot()
                .expect("every shard checkpoints");
            assert_eq!(ShardedSnapshot::decode(&snap.encode()).unwrap(), snap);
            let (want_report, want_hfta) = baseline.finish();
            let mut crash_points = vec![
                ("at-record-0", CrashPlan::at_record(0)),
                ("mid-stream", CrashPlan::at_record(part_len / 2)),
                ("after-offers", CrashPlan::after_offers(10)),
            ];
            if scale < 0.5 {
                crash_points.truncate(2);
            }
            for (cname, crash) in crash_points {
                // Scalar-feed crash run: the oracle's durable artifacts.
                let mut scalar = build_sharded(n, &faults, false, true, IngestMode::Scalar)
                    .with_crash(crash_shard, crash);
                scalar.run(&records);
                let (want_snap, want_log) = scalar
                    .durable_state(crash_shard)
                    .expect("crash leaves durable artifacts");
                for &size in &sizes {
                    let label = format!("{n} shards/chunk={size}/{fname}/{cname}");
                    let mut sx =
                        build_sharded(n, &faults, false, true, IngestMode::Chunked { size })
                            .with_crash(crash_shard, crash);
                    sx.run(&records);
                    assert_eq!(sx.crashed_shards(), vec![crash_shard], "{label}");
                    let (got_snap, got_log) = sx
                        .durable_state(crash_shard)
                        .expect("crash leaves durable artifacts");
                    // The durable artifacts a mid-chunk death leaves are
                    // the scalar ones, byte for byte.
                    assert_eq!(got_snap.encode(), want_snap.encode(), "{label}: snapshot");
                    assert_eq!(got_log.encode(), want_log.encode(), "{label}: WAL");
                    sx.recover_shard(crash_shard, &got_snap, got_log, &records)
                        .expect("recovery succeeds");
                    assert!(sx.crashed_shards().is_empty(), "{label}");
                    let (got_report, got_hfta) = sx.finish();
                    assert_eq!(got_report, want_report, "{label}: recovered report");
                    assert_eq!(got_hfta.results(), want_hfta.results(), "{label}: results");
                }
            }
        }
    }
}

/// Regression: the router's final, partially-filled chunk is flushed at
/// feed close, never dropped — every record reaches its shard even when
/// the stream length shares no factor with the chunk size, and a
/// crashed shard's shutdown-loss ledger stays exact under chunked feed.
#[test]
fn partial_final_chunk_is_flushed_and_shutdown_loss_stays_exact() {
    let scale = scale();
    let base = stream(scale);
    // 1024 > any single shard's tail: every shard ends on a partial
    // chunk; 997 is prime, so no boundary ever aligns.
    for &size in &[997usize, 1024] {
        for &n in &shard_counts(scale) {
            let mut sx = build_sharded(n, &None, false, false, IngestMode::Chunked { size });
            sx.run(&base);
            let (report, _) = sx.finish();
            assert_eq!(
                report.records,
                base.len() as u64,
                "{n} shards/chunk={size}: every record of every partial chunk processed"
            );
        }
    }
    // A shard dead mid-stream never consumes its tail — including the
    // partial final chunk. The shutdown-loss ledger must count exactly
    // the unconsumed records, same as under scalar feed.
    let n = 2;
    let crash_shard = n - 1;
    let probe = build_sharded(n, &None, false, true, IngestMode::Scalar);
    let part_len = probe.partition(&base)[crash_shard].len() as u64;
    let crash = CrashPlan::at_record(part_len / 2);
    let run = |mode: IngestMode| {
        let mut sx = build_sharded(n, &None, false, true, mode).with_crash(crash_shard, crash);
        sx.run(&base);
        sx.finish()
    };
    let (scalar_report, _) = run(IngestMode::Scalar);
    let (chunked_report, _) = run(IngestMode::Chunked { size: 997 });
    assert_eq!(
        chunked_report, scalar_report,
        "shutdown-loss ledger identical across feed modes"
    );
    assert!(
        chunked_report.records_shutdown_lost > 0,
        "the drill actually stranded records"
    );
}
