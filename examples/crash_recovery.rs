//! Surviving a crash — on real disk: the process dies mid-epoch with
//! partial aggregates in flight, a fresh process reopens the store
//! directory and comes back **bit-identical**, and when the power cut
//! also tears the newest checkpoint the recovery falls back one
//! generation — explicitly, with the loss accounted — and still lands
//! on the exact answer after replay.
//!
//! The durable layout is the generational checkpoint store: A/B
//! checksummed manifest slots name the current generation, each
//! `gen-N/` holds an atomically-written snapshot plus a segmented
//! write-ahead eviction log, and every artifact carries an FNV-1a
//! checksum so a torn or flipped byte is refused, never restored.
//!
//! Run with: `cargo run --release --example crash_recovery`

use msa_core::{
    AttrSet, BoundsReport, CostParams, CrashPlan, ExecutorConfig, FaultPlan, MsaError, StoreHandle,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_stream::UniformStreamBuilder;

fn plan() -> Result<PhysicalPlan, MsaError> {
    // AB phantom feeding the A and B queries: evictions cascade on
    // every path, so the crash lands in a busy pipeline.
    Ok(PhysicalPlan::new(vec![
        PlanNode {
            attrs: AttrSet::parse_checked("AB")?,
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: AttrSet::parse_checked("A")?,
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: AttrSet::parse_checked("B")?,
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])?)
}

fn store_error(e: msa_core::StoreError) -> MsaError {
    println!("store error: {e}");
    MsaError::State("durable store refused an operation")
}

fn main() -> Result<(), MsaError> {
    let stream = UniformStreamBuilder::new(4, 120)
        .records(12_000)
        .duration_secs(6.0)
        .seed(7)
        .build();
    // A lossy, duplicating channel makes the claim strict: recovery
    // must re-draw the *same* fault decisions, not just the same sums.
    let faults = FaultPlan::new(99)
        .with_eviction_loss(0.05)
        .with_eviction_duplication(0.02);
    let base_plan = plan()?;
    let config = || {
        let mut cfg = ExecutorConfig::new(base_plan.clone(), CostParams::paper(), 1_000_000, 42);
        cfg.durable = true;
        cfg.faults = Some(faults);
        cfg
    };

    // The reference: a run that never crashes.
    let mut reference = config().build();
    reference.run(&stream.records);
    let (ref_report, ref_hfta) = reference.finish();
    println!(
        "reference run: {} records, {} epochs, {} evictions ({} dropped, {} duplicated)",
        ref_report.records,
        ref_report.epochs,
        ref_report.intra_evictions + ref_report.flush_evictions,
        ref_report.evictions_dropped,
        ref_report.evictions_duplicated,
    );

    // The store lives in a real directory: every commit is write-temp →
    // fsync → atomic-rename → fsync-dir, every WAL append is fsynced.
    let root = std::env::temp_dir().join(format!("msa_crash_recovery_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();

    // The incident: the process dies at record 7 000 — mid-epoch, with
    // partial aggregates sitting in every LFTA table. Everything the
    // dead process leaves behind is what `fsync` promised, nothing more.
    {
        let handle = StoreHandle::on_disk(&root).map_err(store_error)?;
        let mut cfg = config();
        cfg.crash = CrashPlan::at_record(7_000);
        let mut victim = cfg.build().with_store(handle.clone());
        victim.run(&stream.records);
        assert!(victim.has_crashed());
        let stats = handle.stats();
        println!(
            "\ncrash at record 7000: store holds generation {} after {} commits, \
             {} WAL appends ({} segments rolled)",
            handle.generation(),
            stats.commits,
            stats.wal_appends,
            stats.wal_segments_rolled,
        );
    } // the "process" is gone; only the directory survives

    // Recovery is a fresh process: reopen the directory, read the
    // manifest pair, load the newest generation, replay its WAL, then
    // resume the stream from the checkpoint's high-water mark. Sequence
    // numbers deduplicate the re-processed tail — exactly-once replay.
    let handle = StoreHandle::on_disk(&root).map_err(store_error)?;
    let recovery = handle.recover_executor(&config());
    let mut recovered = recovery
        .executor
        .ok_or(MsaError::State("clean store must yield an executor"))?;
    println!(
        "reboot: recovered generation {} at record {}, {} torn WAL entries dropped, \
         {} fallbacks",
        recovery.generation,
        recovery.records_hwm,
        recovery.torn_entries_dropped,
        recovery.fallbacks,
    );
    assert_eq!(recovery.fallbacks, 0, "nothing was torn yet");
    recovered.run(&stream.records[usize::try_from(recovery.records_hwm).unwrap_or(0)..]);
    let (report, hfta) = recovered.finish();
    assert_eq!(report, ref_report, "reports must be bit-identical");
    assert_eq!(hfta.results(), ref_hfta.results());
    println!("recovered run is bit-identical to the crash-free run");

    // The second incident: the power cut also tore the newest
    // generation's snapshot mid-write — half the bytes on disk, the
    // checksum unsatisfiable. The scrub names the rotten generation...
    let newest = handle.generation();
    let snap_path = format!("gen-{newest}/snapshot.bin");
    let len = handle
        .with_backend(|b| b.read(&snap_path).map(|v| v.len()))
        .map_err(store_error)?;
    handle
        .with_backend(|b| b.truncate(&snap_path, len / 2))
        .map_err(store_error)?;
    let scrub = handle.scrub().map_err(store_error)?;
    println!(
        "\ntorn write injected into gen-{newest}/snapshot.bin ({} -> {} bytes): \
         scrub quarantines {:?}",
        len,
        len / 2,
        scrub.generations_quarantined,
    );
    assert_eq!(scrub.generations_quarantined, vec![newest]);

    // ...and recovery refuses it, falling back one generation. The
    // fallback is explicit — counted in the ledger, never silent — and
    // replay from the older high-water mark covers the gap exactly.
    let handle = StoreHandle::on_disk(&root).map_err(store_error)?;
    let recovery = handle.recover_executor(&config());
    let mut recovered = recovery
        .executor
        .ok_or(MsaError::State("an older generation must stay readable"))?;
    println!(
        "reboot after rot: fell back {} generation(s) to gen {}, resuming at record {}",
        recovery.fallbacks, recovery.generation, recovery.records_hwm,
    );
    assert!(
        recovery.fallbacks >= 1,
        "the torn generation must be skipped"
    );
    assert!(recovery.generation < newest);
    recovered.run(&stream.records[usize::try_from(recovery.records_hwm).unwrap_or(0)..]);
    let (report, hfta) = recovered.finish();
    assert_eq!(report, ref_report, "fallback recovery must also be exact");
    assert_eq!(hfta.results(), ref_hfta.results());

    // The degraded-answer view at shutdown: the channel's losses and
    // duplicates became guaranteed interval width, the bias identity
    // restates the interval's center, and recovery reproduced the
    // *bounds* bit-for-bit too — not just the sums.
    let bounds = BoundsReport::at_finish(&report, &hfta);
    let ref_bounds = BoundsReport::at_finish(&ref_report, &ref_hfta);
    assert_eq!(bounds, ref_bounds, "intervals must survive the crash");
    let truth = stream.records.len() as u64;
    println!("\nfallback recovery is bit-identical to the crash-free run:");
    for q in [AttrSet::parse_checked("A")?, AttrSet::parse_checked("B")?] {
        let qb = bounds
            .for_query(q)
            .ok_or(MsaError::State("query missing from bounds"))?;
        println!(
            "  query {q}: {} groups, {qb} (bias {:+})",
            hfta.totals(q).len(),
            report.count_bias(q)
        );
        assert_eq!(qb.observed as i64 - report.count_bias(q), truth as i64);
        assert!(qb.contains(truth), "true count must sit inside the bound");
        assert_eq!(hfta.totals(q), ref_hfta.totals(q));
    }
    std::fs::remove_dir_all(&root).ok();
    println!(
        "\nexactly-once replay off real disk: every delivery applied once, none lost,\n\
         none doubled — even when the newest checkpoint itself was torn."
    );
    Ok(())
}
