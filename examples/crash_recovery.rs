//! Surviving a crash: the process dies in the middle of an epoch — half
//! the stream processed, partial aggregates in flight — and comes back
//! with **bit-identical** results, thanks to epoch-aligned checkpoints
//! and a write-ahead eviction log.
//!
//! The durable artifacts are ordinary byte buffers (versioned,
//! checksummed); a flipped bit is rejected with a typed error instead
//! of being restored into garbage state.
//!
//! Run with: `cargo run --release --example crash_recovery`

use msa_core::{
    AttrSet, BoundsReport, CostParams, CrashPlan, EvictionLog, Executor, FaultPlan, MsaError,
    Snapshot, SnapshotError,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_stream::UniformStreamBuilder;

fn plan() -> Result<PhysicalPlan, MsaError> {
    // AB phantom feeding the A and B queries: evictions cascade on
    // every path, so the crash lands in a busy pipeline.
    Ok(PhysicalPlan::new(vec![
        PlanNode {
            attrs: AttrSet::parse_checked("AB")?,
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: AttrSet::parse_checked("A")?,
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: AttrSet::parse_checked("B")?,
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])?)
}

fn main() -> Result<(), MsaError> {
    let stream = UniformStreamBuilder::new(4, 120)
        .records(12_000)
        .duration_secs(6.0)
        .seed(7)
        .build();
    // A lossy, duplicating channel makes the claim strict: recovery
    // must re-draw the *same* fault decisions, not just the same sums.
    let faults = FaultPlan::new(99)
        .with_eviction_loss(0.05)
        .with_eviction_duplication(0.02);
    let base_plan = plan()?;
    let build = || {
        Executor::new(base_plan.clone(), CostParams::paper(), 1_000_000, 42).with_faults(&faults)
    };

    // The reference: a run that never crashes.
    let mut reference = build();
    reference.run(&stream.records);
    let (ref_report, ref_hfta) = reference.finish();
    println!(
        "reference run: {} records, {} epochs, {} evictions ({} dropped, {} duplicated)",
        ref_report.records,
        ref_report.epochs,
        ref_report.intra_evictions + ref_report.flush_evictions,
        ref_report.evictions_dropped,
        ref_report.evictions_duplicated,
    );

    // The incident: the process dies at record 7 000 — mid-epoch, with
    // partial aggregates sitting in every LFTA table.
    let mut victim = build()
        .with_eviction_log()
        .with_snapshots()
        .with_crash(CrashPlan::at_record(7_000));
    victim.run(&stream.records);
    assert!(victim.has_crashed());
    let (snapshot, log) = victim.durable_state().ok_or(MsaError::State(
        "crashed executor kept no durable artifacts",
    ))?;
    println!(
        "\ncrash at record 7000: last checkpoint at epoch {}, record {}, seq {}; \
         write-ahead log holds {} deliveries past it",
        snapshot.epoch,
        snapshot.records_hwm,
        snapshot.seq,
        log.suffix(snapshot.seq).count(),
    );

    // Durability is bytes: both artifacts serialize with a version tag
    // and an FNV-1a checksum...
    let snap_bytes = snapshot.encode();
    let log_bytes = log.encode();
    println!(
        "durable artifacts: snapshot {} bytes, log {} bytes",
        snap_bytes.len(),
        log_bytes.len()
    );
    // ...and a torn or corrupted buffer is refused, never restored.
    let mut corrupted = snap_bytes.clone();
    corrupted[snap_bytes.len() / 2] ^= 0x10;
    match Snapshot::decode(&corrupted) {
        Err(SnapshotError::ChecksumMismatch { expected, found }) => {
            println!("corrupted snapshot rejected: checksum {found:#018x} != {expected:#018x}")
        }
        other => panic!("corruption must be caught, got {other:?}"),
    }

    // Recovery: decode the good bytes, restore into a freshly built
    // executor, and resume the stream from the checkpoint's high-water
    // mark. The log suffix replays the open epoch's deliveries exactly
    // once; sequence numbers deduplicate the re-processed stream.
    let snapshot = Snapshot::decode(&snap_bytes)?;
    let log = EvictionLog::decode(&log_bytes)?;
    let mut recovered = build().recover(&snapshot, log)?;
    recovered.run(&stream.records[snapshot.records_hwm as usize..]);
    let (report, hfta) = recovered.finish();

    assert_eq!(report, ref_report, "reports must be bit-identical");
    assert_eq!(hfta.results(), ref_hfta.results());

    // The degraded-answer view at shutdown: the channel's losses and
    // duplicates became guaranteed interval width, the bias identity
    // restates the interval's center, and recovery reproduced the
    // *bounds* bit-for-bit too — not just the sums.
    let bounds = BoundsReport::at_finish(&report, &hfta);
    let ref_bounds = BoundsReport::at_finish(&ref_report, &ref_hfta);
    assert_eq!(bounds, ref_bounds, "intervals must survive the crash");
    let truth = stream.records.len() as u64;
    println!("\nrecovered run is bit-identical to the crash-free run:");
    for q in [AttrSet::parse_checked("A")?, AttrSet::parse_checked("B")?] {
        let qb = bounds
            .for_query(q)
            .ok_or(MsaError::State("query missing from bounds"))?;
        println!(
            "  query {q}: {} groups, {qb} (bias {:+})",
            hfta.totals(q).len(),
            report.count_bias(q)
        );
        assert_eq!(qb.observed as i64 - report.count_bias(q), truth as i64);
        assert!(qb.contains(truth), "true count must sit inside the bound");
        assert_eq!(hfta.totals(q), ref_hfta.totals(q));
    }
    println!(
        "\nexactly-once replay: every delivery applied once, none lost, none doubled,\n\
         and the guaranteed intervals came back bit-identical with them."
    );
    Ok(())
}
