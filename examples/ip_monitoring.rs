//! IP traffic monitoring — the paper's motivating scenario.
//!
//! Four exploratory aggregations over packet headers, differing only in
//! their grouping attributes:
//!
//! ```sql
//! select srcIP, srcPort,  count(*) from packets group by srcIP, srcPort
//! select srcPort, dstIP,  count(*) from packets group by srcPort, dstIP
//! select srcPort, dstPort,count(*) from packets group by srcPort, dstPort
//! select dstIP, dstPort,  count(*) from packets group by dstIP, dstPort
//! ```
//!
//! The example synthesizes a clustered packet trace (calibrated to the
//! paper's tcpdump statistics), plans with and without phantoms, runs
//! both through the two-level executor and reports the measured cost
//! ratio plus heavy hitters.
//!
//! Run with: `cargo run --release --example ip_monitoring`

use msa_core::LinearModel;
use msa_core::{
    Algorithm, AllocStrategy, AttrSet, CostParams, EngineOptions, Executor, MsaError,
    MultiAggregator, Schema,
};
use msa_optimizer::cost::CostContext;
use msa_stream::{DatasetStats, PacketTraceBuilder, TraceProfile};

fn main() -> Result<(), MsaError> {
    let schema = Schema::packet_headers();
    // 5% of the paper-scale trace keeps the example snappy (~43k packets).
    let trace = PacketTraceBuilder::new(TraceProfile::paper_scaled(0.05))
        .seed(11)
        .build();
    println!(
        "packet trace: {} packets over {:.0} s",
        trace.len(),
        trace
            .records
            .last()
            .map_or(0.0, |r| r.ts_micros as f64 / 1e6)
    );

    let queries = ["AB", "BC", "BD", "CD"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<Vec<AttrSet>, _>>()?;
    for q in &queries {
        println!("  query: group by {}", schema.describe(*q));
    }

    // Plan and execute with phantoms (GCSL) ...
    let m_words = 4_000.0;
    let mut opts = EngineOptions::new(m_words);
    opts.bootstrap_records = trace.len() / 10;
    let mut engine = MultiAggregator::new(queries.clone(), opts);
    for r in &trace.records {
        engine.push(*r);
    }
    let output = engine.finish();
    let plan = output
        .final_plan
        .as_ref()
        .ok_or(MsaError::State("engine produced no final plan"))?;
    println!("\nconfiguration with phantoms: {}", plan.configuration);
    let with_phantoms = output.report.per_record_cost();

    // ... and the naive no-phantom baseline on identical statistics.
    let stats = DatasetStats::compute(&trace.records, AttrSet::parse_checked("ABCD")?);
    let model = LinearModel::paper_no_intercept();
    let ctx = CostContext::new(&stats, &model);
    let flat_cfg = msa_core::Configuration::from_queries(&queries);
    let flat_alloc = AllocStrategy::SupernodeLinear.allocate(&flat_cfg, m_words, &ctx);
    let flat_plan = msa_core::Plan {
        configuration: flat_cfg,
        allocation: flat_alloc,
        predicted_cost: 0.0,
        predicted_update_cost: 0.0,
    };
    let mut flat_ex =
        Executor::new(flat_plan.to_physical(), CostParams::paper(), u64::MAX, 5).discard_results();
    flat_ex.run(&trace.records);
    let without_phantoms = flat_ex.report().per_record_cost();

    println!("\nmeasured per-record cost (c1 units):");
    println!("  with phantoms:    {with_phantoms:.2}");
    println!("  without phantoms: {without_phantoms:.2}");
    println!(
        "  improvement:      {:.1}x",
        without_phantoms / with_phantoms
    );
    let _ = Algorithm::default(); // (GCSL — shown for discoverability)

    // Heavy hitters: the paper's example query — "report every source
    // that sent more than 100 packets".
    let src_pairs = output.totals(queries[0]);
    let mut heavy: Vec<_> = src_pairs.iter().filter(|(_, &c)| c > 100).collect();
    heavy.sort_by_key(|(_, &c)| std::cmp::Reverse(c));
    println!(
        "\n{} (srcIP, srcPort) pairs exceeded 100 packets; top 5:",
        heavy.len()
    );
    for (key, count) in heavy.iter().take(5) {
        println!("  {key} -> {count} packets");
    }
    Ok(())
}
