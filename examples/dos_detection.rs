//! Denial-of-service detection — "identify normal activity vs activity
//! under denial of service attack" (paper §1) — combining the full
//! feature set: selection filters, phantom-shared aggregation, HAVING
//! thresholds, adaptive replanning and trace persistence.
//!
//! A SYN flood begins mid-trace: thousands of spoofed sources hammer
//! one service. Three monitoring queries watch the stream; a filter
//! restricts them to connections from ephemeral source ports; per-epoch
//! HAVING reports flag the flood; the group-count explosion triggers an
//! adaptive replan.
//!
//! Run with: `cargo run --release --example dos_detection`

use msa_core::{
    AdaptivePolicy, AttrSet, CmpOp, EngineOptions, Filter, MsaError, MultiAggregator, Record,
};
use msa_stream::{PacketTraceBuilder, TraceProfile, UniformStreamBuilder};

fn main() -> Result<(), MsaError> {
    // Normal traffic: the calibrated packet trace, 3 seconds.
    let normal = PacketTraceBuilder::new(TraceProfile::paper_scaled(0.04))
        .seed(31)
        .build();
    let normal_len = normal.len();
    let mut records: Vec<Record> = normal
        .records
        .iter()
        .map(|r| Record {
            attrs: r.attrs,
            ts_micros: r.ts_micros * 3_000_000 / 62_000_000, // compress to 3 s
        })
        .collect();

    // The flood (3 s – 9 s): spoofed srcIPs (huge cardinality), one
    // victim (dstIP = 7777, dstPort = 80).
    let flood = UniformStreamBuilder::new(1, 4000)
        .records(120_000)
        .duration_secs(6.0)
        .seed(32)
        .build();
    records.extend(flood.records.iter().map(|r| Record {
        attrs: [
            r.attrs[0],
            40_000 + r.attrs[0] % 20_000,
            7_777,
            80,
            0,
            0,
            0,
            0,
        ],
        ts_micros: 3_000_000 + r.ts_micros,
    }));

    // Persist and reload the incident trace (what an operator would
    // archive for forensics).
    let path = std::env::temp_dir().join("msa_dos_incident.bin");
    let stream = msa_stream::gen::GeneratedStream {
        records: records.clone(),
        universe_groups: 0,
        arity: 4,
    };
    msa_stream::io::write_trace(&stream, &path)?;
    let reloaded = msa_stream::io::read_trace(&path)?;
    assert_eq!(reloaded.records.len(), records.len());
    println!(
        "incident trace: {} packets archived to {} and reloaded",
        records.len(),
        path.display()
    );

    // Monitoring queries over (srcIP, srcPort, dstIP, dstPort):
    //   per-source packet counts, per-victim fan-in, per-pair flows.
    let queries = vec![
        AttrSet::parse_checked("A")?,  // per srcIP
        AttrSet::parse_checked("C")?,  // per dstIP
        AttrSet::parse_checked("AC")?, // per (srcIP, dstIP)
    ];

    let mut opts = EngineOptions::new(10_000.0);
    opts.epoch_micros = 1_000_000; // 1 s epochs
    opts.bootstrap_records = 5_000;
    // Watch only ephemeral (high) source ports — the SYN flood uses
    // them — which excludes roughly half of the background traffic
    // before any hash table is touched.
    opts.filter = Filter::all().and(1, CmpOp::Ge, 8);
    opts.adaptive = Some(AdaptivePolicy {
        check_every_epochs: 1,
        drift_threshold: 1.0,
        min_probes: 1000,
    });

    let mut engine = MultiAggregator::new(queries.clone(), opts);
    for r in &reloaded.records {
        engine.push(*r);
    }
    let out = engine.finish();

    println!(
        "\n{} of {} packets passed the port filter; {} adaptive replans",
        out.report.records - out.report.filtered_out,
        out.report.records,
        out.replans
    );

    // Per-epoch HAVING report on the fan-in query: a victim receiving
    // from huge numbers of sources is the DoS signature.
    println!("\nper-epoch heavy destinations (count > 5000):");
    for res in out.results.iter().filter(|r| r.query == queries[1]) {
        let heavy: Vec<_> = res.having_count_over(5_000).collect();
        if heavy.is_empty() {
            println!(
                "  epoch {}: normal ({} packets)",
                res.epoch,
                res.total_count()
            );
        } else {
            for (k, agg) in heavy {
                println!(
                    "  epoch {}: ALERT dstIP {} received {} packets",
                    res.epoch, k, agg.count
                );
            }
        }
    }

    // The flood should dominate the per-source totals too.
    let per_pair = out.totals(queries[2]);
    println!("\ndistinct (srcIP,dstIP) pairs seen: {}", per_pair.len());
    assert!(out.replans >= 1, "flood must trigger a replan");
    let _ = normal_len;
    std::fs::remove_file(&path).ok();
    Ok(())
}
