//! Value aggregates: "for every destination IP, destination port and
//! 5 minute interval, report the average packet length" — the paper's
//! introductory query — plus its HAVING variant ("provided this number
//! of packets is more than 100").
//!
//! Grouping attributes are (srcIP, srcPort, dstIP, dstPort) in slots
//! A–D; the packet length rides in slot E as the metric attribute, so
//! no query groups by it. The LFTA carries (count, sum, min, max)
//! partials through the phantom cascade; AVG is derived at the HFTA.
//!
//! Run with: `cargo run --release --example avg_packet_length`

use msa_core::{AttrSet, EngineOptions, MsaError, MultiAggregator, ValueSource};
use msa_stream::{PacketTraceBuilder, Record, Schema, SplitMix64, TraceProfile};

fn main() -> Result<(), MsaError> {
    let schema = Schema::new(["srcIP", "srcPort", "dstIP", "dstPort", "pktLen"]);
    // Synthesize headers, then stamp a plausible packet length into
    // slot E: bimodal (ACKs around 40 bytes, data around 1400).
    let trace = PacketTraceBuilder::new(TraceProfile::paper_scaled(0.05))
        .seed(21)
        .build();
    let mut rng = SplitMix64::new(99);
    let records: Vec<Record> = trace
        .records
        .iter()
        .map(|r| {
            let mut attrs = r.attrs;
            attrs[4] = if rng.gen_bool(0.4) {
                40 + rng.gen_u32_below(20)
            } else {
                1200 + rng.gen_u32_below(300)
            };
            Record {
                attrs,
                ts_micros: r.ts_micros,
            }
        })
        .collect();

    // Two related AVG queries sharing the LFTA:
    //   group by (dstIP, dstPort)  — per-service packet sizes
    //   group by (srcIP, dstIP)    — per-conversation packet sizes
    let queries = vec![AttrSet::parse_checked("CD")?, AttrSet::parse_checked("AC")?];
    println!("queries:");
    for q in &queries {
        println!("  avg(pktLen) group by {}", schema.describe(*q));
    }

    let mut opts = EngineOptions::new(6_000.0);
    opts.value_source = ValueSource::Attr(4); // pktLen rides in slot E
    opts.bootstrap_records = records.len() / 10;
    let mut engine = MultiAggregator::new(queries.clone(), opts);
    for r in &records {
        engine.push(*r);
    }
    let out = engine.finish();
    println!(
        "\nplan: {}",
        out.final_plan
            .as_ref()
            .ok_or(MsaError::State("engine produced no final plan"))?
            .configuration
    );

    // Exact AVG per (dstIP, dstPort), HAVING count > 100.
    let services = out.aggregate_totals(queries[0]);
    let mut heavy: Vec<_> = services.iter().filter(|(_, a)| a.count > 100).collect();
    heavy.sort_by_key(|(_, a)| std::cmp::Reverse(a.count));
    println!(
        "\n{} services with more than 100 packets; top 5 by traffic:",
        heavy.len()
    );
    println!(
        "{:>24}  {:>8}  {:>9}  {:>5}  {:>5}",
        "(dstIP,dstPort)", "packets", "avg len", "min", "max"
    );
    for (key, agg) in heavy.iter().take(5) {
        println!(
            "{:>24}  {:>8}  {:>9.1}  {:>5}  {:>5}",
            key.to_string(),
            agg.count,
            agg.avg(),
            agg.min,
            agg.max
        );
    }

    // Sanity: global average must sit between the two modes.
    let total: u64 = services.values().map(|a| a.count).sum();
    let sum: u64 = services.values().map(|a| a.sum).sum();
    let global_avg = sum as f64 / total as f64;
    println!("\nglobal average packet length: {global_avg:.1} bytes");
    assert!(global_avg > 40.0 && global_avg < 1500.0);
    assert_eq!(total as usize, records.len());
    Ok(())
}
