//! Quickstart: compute two related aggregations over a stream with
//! phantom sharing, in a dozen lines.
//!
//! Run with: `cargo run --release --example quickstart`

use msa_core::{AttrSet, EngineOptions, MsaError, MultiAggregator};
use msa_stream::UniformStreamBuilder;

fn main() -> Result<(), MsaError> {
    // A synthetic stream: 100k 4-attribute tuples over 1000 groups.
    let stream = UniformStreamBuilder::new(4, 1000)
        .records(100_000)
        .seed(7)
        .build();

    // Two aggregation queries differing only in grouping attributes:
    //   Q1: select A, B, count(*) group by A, B
    //   Q2: select B, C, count(*) group by B, C
    let queries = vec![AttrSet::parse_checked("AB")?, AttrSet::parse_checked("BC")?];

    // 20,000 words (80 kB) of LFTA memory; everything else defaulted
    // (GCSL planning, paper cost parameters, 60 s epochs).
    let mut engine = MultiAggregator::new(queries.clone(), EngineOptions::new(20_000.0));
    for record in &stream.records {
        engine.push(*record);
    }
    let output = engine.finish();

    let plan = output
        .final_plan
        .as_ref()
        .ok_or(MsaError::State("engine produced no final plan"))?;
    println!("chosen configuration: {}", plan.configuration);
    println!(
        "predicted per-record cost: {:.3} (c1 units)",
        plan.predicted_cost
    );
    println!(
        "measured per-record cost:  {:.3} (c1 units)",
        output.report.per_record_cost()
    );

    for q in &queries {
        let totals = output.totals(*q);
        let sum: u64 = totals.values().sum();
        println!(
            "query {q}: {} groups, {} records accounted",
            totals.len(),
            sum
        );
        assert_eq!(
            sum as usize,
            stream.len(),
            "every record counted exactly once"
        );
    }
    Ok(())
}
