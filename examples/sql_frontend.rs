//! The SQL front end: run the paper's queries verbatim.
//!
//! Q0–Q3 from §2.2/§2.4 are typed as SQL strings; the engine parses
//! them, derives the shared epoch/filter settings, plans the phantom
//! configuration and streams the trace — exactly the workflow a
//! Gigascope operator would use.
//!
//! Run with: `cargo run --release --example sql_frontend`

use msa_core::{EngineOptions, MsaError, MultiAggregator};
use msa_stream::{PacketTraceBuilder, Schema, TraceProfile};

fn main() -> Result<(), MsaError> {
    let schema = Schema::packet_headers(); // srcIP, srcPort, dstIP, dstPort

    // The paper's exploratory query set (§1): related aggregations
    // differing only in their grouping attributes, all per 60 s epoch,
    // restricted to low destination ports.
    let sql = [
        "select srcIP, srcPort, tb, count(*) as cnt \
         from packets where dstPort < 1024 \
         group by srcIP, srcPort, time/60 as tb",
        "select srcPort, dstIP, tb, count(*) as cnt \
         from packets where dstPort < 1024 \
         group by srcPort, dstIP, time/60 as tb",
        "select srcPort, dstPort, tb, count(*) as cnt \
         from packets where dstPort < 1024 \
         group by srcPort, dstPort, time/60 as tb",
        "select dstIP, dstPort, tb, count(*) as cnt \
         from packets where dstPort < 1024 \
         group by dstIP, dstPort, time/60 as tb \
         having count(*) > 100",
    ];
    println!("queries:");
    for q in &sql {
        println!("  {q}");
    }

    let trace = PacketTraceBuilder::new(TraceProfile::paper_scaled(0.05))
        .seed(13)
        .build();

    let mut opts = EngineOptions::new(5_000.0);
    opts.bootstrap_records = trace.len() / 10;
    let mut engine = MultiAggregator::from_sql(&sql, &schema, opts)?;
    for r in &trace.records {
        engine.push(*r);
    }
    let out = engine.finish();

    let plan = out
        .final_plan
        .as_ref()
        .ok_or(MsaError::State("engine produced no final plan"))?;
    println!("\nchosen configuration: {}", plan.configuration);
    println!(
        "processed {} packets in {} epochs; per-record cost {:.2} c1",
        out.report.records,
        out.report.epochs,
        out.report.per_record_cost()
    );

    // Apply the fourth query's HAVING clause per epoch.
    let dst_pairs = msa_stream::AttrSet::parse_checked("CD")?;
    println!(
        "\nHAVING count(*) > 100, per epoch, query {}:",
        sql[3].split("from").next().unwrap_or("Q3").trim()
    );
    for res in out.results.iter().filter(|r| r.query == dst_pairs) {
        let mut heavy: Vec<_> = res.having_count_over(100).collect();
        heavy.sort_by_key(|(_, a)| std::cmp::Reverse(a.count));
        println!(
            "  epoch {}: {} heavy (dstIP, dstPort) groups{}",
            res.epoch,
            heavy.len(),
            heavy
                .first()
                .map(|(k, a)| format!("; top: {k} with {} packets", a.count))
                .unwrap_or_default()
        );
    }
    Ok(())
}
