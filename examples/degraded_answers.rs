//! Progressive answers under shed load: a burst overruns the planned
//! budget, the guard sheds within its degradation policy, and the
//! pipeline keeps answering — every answer an `observed ± ε` interval
//! that is *guaranteed* to contain the fault-free true count.
//!
//! The run uses `DegradationPolicy::BoundedApprox { max_width }`: the
//! guard may spend at most `max_width` records of accuracy, and once the
//! budget is gone further shed requests are denied (the records are
//! processed instead). A lossy eviction channel adds *uncontrolled*
//! loss on top, so the interval has several loss classes to attribute.
//!
//! Run with: `cargo run --release --example degraded_answers`

use msa_core::{
    AttrSet, Burst, CostParams, DegradationPolicy, Executor, FaultPlan, GuardPolicy, MsaError,
};
use msa_gigascope::plan::{PhysicalPlan, PlanNode};
use msa_stream::UniformStreamBuilder;

const EPOCH_MICROS: u64 = 1_000_000;

fn plan() -> Result<PhysicalPlan, MsaError> {
    Ok(PhysicalPlan::new(vec![
        PlanNode {
            attrs: AttrSet::parse_checked("AB")?,
            parent: None,
            buckets: 64,
            is_query: false,
        },
        PlanNode {
            attrs: AttrSet::parse_checked("A")?,
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
        PlanNode {
            attrs: AttrSet::parse_checked("B")?,
            parent: Some(0),
            buckets: 16,
            is_query: true,
        },
    ])?)
}

fn main() -> Result<(), MsaError> {
    // 6 s of steady traffic, then a 4× burst in epochs 2..4.
    let organic = UniformStreamBuilder::new(4, 50)
        .records(24_000)
        .duration_secs(6.0)
        .seed(3)
        .build();
    let burst = FaultPlan::new(17).with_burst(Burst {
        start_epoch: 2,
        epochs: 2,
        amplification: 4,
        fresh_groups: false,
    });
    let records = burst.apply_to_stream(&organic.records, EPOCH_MICROS);
    let truth = records.len() as u64;

    // Calibrate the planned per-epoch cost on the organic stream, then
    // set a deliberately tight budget so the burst forces degradation.
    let mut probe = Executor::new(plan()?, CostParams::paper(), EPOCH_MICROS, 7);
    probe.run(&organic.records);
    let (probe_report, _) = probe.finish();
    let planned = probe_report
        .epoch_costs
        .iter()
        .map(|&(_, i, f)| i + f)
        .fold(0.0, f64::max);
    let e_p = 0.6 * planned;

    let max_width = 600;
    let policy = DegradationPolicy::BoundedApprox { max_width };
    let mut guard = GuardPolicy::new(e_p).with_degradation(policy);
    guard.recover_ratio = 0.6;
    guard.shed_factor = 4;
    println!(
        "burst: epochs 2..4 at 4x rate ({truth} records total); \
         budget E_p = {e_p:.0}; policy {policy}"
    );

    // The channel is lossy too: 3% eviction loss the guard cannot
    // control — it is metered against the same promise.
    let faults = FaultPlan::new(99).with_eviction_loss(0.03);

    let base_plan = plan()?;
    let run = || -> (msa_core::BoundsReport, Vec<String>) {
        let mut ex = Executor::new(base_plan.clone(), CostParams::paper(), EPOCH_MICROS, 7)
            .with_guard(guard)
            .with_faults(&faults);
        let mut lines = Vec::new();
        let mut seen_epochs = 0;
        for r in &records {
            ex.process(r);
            // An epoch closed: publish the progressive answer.
            let epochs = ex.report().epochs;
            if epochs > seen_epochs {
                seen_epochs = epochs;
                let bounds = ex.bounds();
                for qb in &bounds.queries {
                    lines.push(format!(
                        "  epoch {:>2}, query {}: {} | budget spent {}/{}{}",
                        epochs - 1,
                        qb.query,
                        qb,
                        bounds.records_lost,
                        max_width,
                        if bounds.bound_breached {
                            " << PROMISE BREACHED"
                        } else {
                            ""
                        }
                    ));
                }
            }
        }
        ex.flush_epoch();
        let live = ex.bounds();
        (live, lines)
    };

    let (bounds, lines) = run();
    println!("\nprogressive answers at each epoch boundary:");
    for line in &lines {
        println!("{line}");
    }

    println!("\nfinal intervals:");
    for qb in &bounds.queries {
        println!("  query {}: {}", qb.query, qb);
        for (class, mass) in qb.losses.classes() {
            if mass > 0 {
                println!("    {mass:>6} records {class}");
            }
        }
        assert!(
            qb.contains(truth),
            "true count {truth} must sit inside [{}, {}]",
            qb.lo(),
            qb.hi()
        );
    }
    println!(
        "\nbudget: {} / {max_width} records spent; denied sheds: {}; promise breached: {}",
        bounds.records_lost, bounds.records_shed_denied, bounds.bound_breached
    );

    // The degraded answers are deterministic: a second run reproduces
    // every interval — and every progressive line — bit for bit.
    let (bounds2, lines2) = run();
    assert_eq!(bounds, bounds2, "intervals must be bit-identical");
    assert_eq!(lines, lines2, "progressive answers must be bit-identical");
    println!(
        "\nevery answer carried a guaranteed bound, and a second run \
         reproduced all of them bit-identically."
    );
    Ok(())
}
