//! Surviving overload: a traffic burst 4× the planned rate hits the
//! LFTA mid-stream, and the runtime guard walks its degradation ladder
//! — shed records, disable phantoms, repair the allocation — instead of
//! falling over, then recovers when the burst passes.
//!
//! Every degradation is *accounted*: the report carries the exact
//! per-query count bias, so downstream consumers know precisely how far
//! off each total can be.
//!
//! Run with: `cargo run --release --example overload_guard`

use msa_core::{AttrSet, Burst, EngineOptions, FaultPlan, GuardPolicy, MsaError, MultiAggregator};
use msa_stream::UniformStreamBuilder;

fn main() -> Result<(), MsaError> {
    // 15 s of steady traffic at 4 000 records/s over 50 groups.
    let stream = UniformStreamBuilder::new(4, 50)
        .records(60_000)
        .duration_secs(15.0)
        .seed(3)
        .build();
    let queries = vec![AttrSet::parse_checked("AB")?, AttrSet::parse_checked("BC")?];

    // Calibrate: run once unguarded to find the planned per-epoch cost.
    let mut opts = EngineOptions::new(6_000.0);
    opts.epoch_micros = 1_000_000;
    opts.bootstrap_records = 4_000;
    let mut probe = MultiAggregator::new(queries.clone(), opts.clone());
    for r in &stream.records {
        probe.push(*r);
    }
    let planned = probe
        .finish()
        .report
        .epoch_costs
        .iter()
        .map(|&(_, i, f)| i + f)
        .fold(0.0, f64::max);
    let e_p = 1.25 * planned;
    println!("planned per-epoch cost {planned:.0}, peak budget E_p = {e_p:.0} (c1 units)");

    // The incident: epochs 6..10 arrive at 4x the planned rate.
    let burst = FaultPlan::new(17).with_burst(Burst {
        start_epoch: 6,
        epochs: 4,
        amplification: 4,
        fresh_groups: false,
    });
    let disturbed = burst.apply_to_stream(&stream.records, opts.epoch_micros);
    println!(
        "burst: epochs 6..10 at 4x rate ({} records total)\n",
        disturbed.len()
    );

    let mut policy = GuardPolicy::new(e_p);
    policy.recover_ratio = 0.6;
    opts.guard = Some(policy);
    let mut engine = MultiAggregator::new(queries.clone(), opts);
    for r in &disturbed {
        engine.push(*r);
    }
    let out = engine.finish();

    println!("per-epoch cost vs budget:");
    for &(epoch, intra, flush) in &out.report.epoch_costs {
        let total = intra + flush;
        let marker = if total > e_p { " << breach" } else { "" };
        println!("  epoch {epoch:>2}: {total:>8.0}{marker}");
    }
    println!("\nguard transitions:");
    for t in &out.report.guard_transitions {
        println!(
            "  epoch {:>2}: {} -> {} (observed {:.0})",
            t.epoch - 1,
            t.from,
            t.to,
            t.observed_cost
        );
    }
    println!(
        "\n{} records shed over {} degraded epochs; {} allocation repairs",
        out.report.records_shed, out.report.epochs_degraded, out.repairs
    );

    // The degraded-answer view: every shed record became interval
    // width, so each query's true count is *guaranteed* to lie in
    // [lo, hi] — the bias identity, restated as a bound.
    let bounds = out.bounds();
    let truth = disturbed.len() as u64;
    println!("\nguaranteed intervals (true count always inside):");
    for q in &queries {
        let qb = bounds
            .for_query(*q)
            .ok_or(MsaError::State("query missing from bounds"))?;
        println!("  query {q}: {qb}");
        for (class, mass) in qb.losses.classes() {
            if mass > 0 {
                println!("    {mass:>6} records {class}");
            }
        }
        let bias = out.report.count_bias(*q);
        assert_eq!(qb.observed as i64 - bias, truth as i64, "bias identity");
        assert!(qb.contains(truth), "interval must contain the true count");
    }
    println!(
        "\n{} records metered against the degradation budget; promise breached: {}",
        bounds.records_lost, bounds.bound_breached
    );
    println!("every degradation accounted: the true count sits inside every interval.");
    Ok(())
}
