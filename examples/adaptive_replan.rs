//! Adaptive replanning under a distribution shift.
//!
//! The stream starts calm (few groups — e.g. steady traffic between a
//! handful of hosts), then a scan/attack begins: the number of distinct
//! groups explodes. The configuration planned for the calm phase
//! suddenly has far higher collision rates than predicted; the engine
//! notices the drift at an epoch boundary, refreshes its statistics
//! from the observed rates, and replans.
//!
//! Run with: `cargo run --release --example adaptive_replan`

use msa_core::{AdaptivePolicy, AttrSet, EngineOptions, MsaError, MultiAggregator, Record};
use msa_stream::UniformStreamBuilder;

fn main() -> Result<(), MsaError> {
    // Phase 1 (0–3 s): 30 groups. Phase 2 (3–9 s): 3000 groups.
    let calm = UniformStreamBuilder::new(4, 30)
        .records(60_000)
        .duration_secs(3.0)
        .seed(1)
        .build();
    let attack = UniformStreamBuilder::new(4, 3000)
        .records(120_000)
        .duration_secs(6.0)
        .seed(2)
        .build();
    let mut records = calm.records.clone();
    records.extend(attack.records.iter().map(|r| Record {
        attrs: r.attrs,
        ts_micros: r.ts_micros + 3_000_000,
    }));

    let queries = vec![AttrSet::parse_checked("AB")?, AttrSet::parse_checked("CD")?];

    let mut opts = EngineOptions::new(8_000.0);
    opts.epoch_micros = 1_000_000; // 1 s epochs
    opts.bootstrap_records = 10_000;
    opts.adaptive = Some(AdaptivePolicy {
        check_every_epochs: 1,
        drift_threshold: 0.5,
        min_probes: 500,
    });

    let mut engine = MultiAggregator::new(queries.clone(), opts);
    let mut last_plan = String::new();
    for (i, r) in records.iter().enumerate() {
        engine.push(*r);
        if let Some(plan) = engine.current_plan() {
            let desc = plan.configuration.notation();
            if desc != last_plan {
                println!(
                    "t = {:.2}s (record {i}): plan -> {desc}",
                    r.ts_micros as f64 / 1e6
                );
                last_plan = desc;
            }
        }
    }
    let output = engine.finish();

    println!("\nreplans performed: {}", output.replans);
    println!(
        "measured per-record cost: {:.3} (c1 units)",
        output.report.per_record_cost()
    );
    // Results stay exact across replans.
    for q in &queries {
        let sum: u64 = output.totals(*q).values().sum();
        assert_eq!(sum as usize, records.len());
        println!("query {q}: {} records accounted, exact", sum);
    }
    Ok(())
}
