//! Exploratory "mini data cube": every 1- and 2-attribute aggregate of
//! a 4-attribute stream — the extreme multiple-aggregation workload the
//! paper's introduction motivates.
//!
//! Ten user queries (A, B, C, D, AB, AC, AD, BC, BD, CD) share one
//! LFTA; the optimizer decides which finer-granularity phantoms to
//! maintain and how to divide the memory.
//!
//! Run with: `cargo run --release --example cube_explorer`

use msa_collision::LinearModel;
use msa_core::MsaError;
use msa_optimizer::cost::{ClusterHandling, CostContext};
use msa_optimizer::{greedy_collision, AllocStrategy, Configuration, FeedingGraph};
use msa_stream::{AttrSet, DatasetStats, UniformStreamBuilder};

fn main() -> Result<(), MsaError> {
    let stream = UniformStreamBuilder::new(4, 2837)
        .records(200_000)
        .seed(3)
        .build();
    let stats = DatasetStats::compute(&stream.records, AttrSet::parse_checked("ABCD")?);

    // The cube's 1- and 2-attribute faces.
    let queries = ["A", "B", "C", "D", "AB", "AC", "AD", "BC", "BD", "CD"]
        .iter()
        .map(|q| AttrSet::parse_checked(q))
        .collect::<Result<Vec<AttrSet>, _>>()?;

    let graph = FeedingGraph::new(&queries);
    println!(
        "feeding graph: {} queries, {} phantom candidates: {:?}",
        graph.queries().len(),
        graph.phantom_candidates().len(),
        graph
            .phantom_candidates()
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );

    let model = LinearModel::paper_no_intercept();
    let mut ctx = CostContext::new(&stats, &model);
    ctx.clustering = ClusterHandling::None;

    for m in [10_000.0, 40_000.0, 100_000.0] {
        let trace = greedy_collision(&graph, m, &ctx, AllocStrategy::SupernodeLinear);
        let chosen = trace.final_step();
        let flat = Configuration::from_queries(&queries);
        let flat_alloc = AllocStrategy::SupernodeLinear.allocate(&flat, m, &ctx);
        let flat_cost = msa_optimizer::cost::per_record_cost(&flat, &flat_alloc, &ctx);
        println!("\nM = {m:>7.0} words:");
        println!("  configuration: {}", chosen.configuration);
        println!(
            "  predicted cost {:.2} vs {:.2} without phantoms ({:.1}x better)",
            chosen.cost,
            flat_cost,
            flat_cost / chosen.cost
        );
        println!("  table sizes (buckets):");
        let mut allocs: Vec<_> = chosen.allocation.iter().collect();
        allocs.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (r, buckets) in allocs {
            let role = if chosen.configuration.is_query(r) {
                "query"
            } else {
                "phantom"
            };
            println!("    {r:<5} {role:<8} {buckets:>9.0}");
        }
    }
    Ok(())
}
