#!/bin/sh
# Offline CI gate: build, test, lint, format — no crate registry access.
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --offline --release"
cargo build --offline --release --workspace

echo "==> cargo test --offline -q"
cargo test --offline --workspace -q

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
