#!/bin/sh
# Offline CI gate: build, test, lint, format — no crate registry access.
# Usage: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> guard: no build artifacts committed"
if git ls-files | grep -q '^target/'; then
    echo "error: build artifacts are tracked under target/;" \
        "run 'git rm -r --cached target/' and commit" >&2
    exit 1
fi

echo "==> cargo build --offline --release"
cargo build --offline --release --workspace

# A wedged shard (a thread stuck inside one `process` call) is invisible
# to the in-process supervisor; the hard timeout is the outer tripwire
# that turns a hang into a CI failure instead of a stalled pipeline.
echo "==> cargo test --offline -q (hard timeout 1800s)"
timeout 1800 cargo test --offline --workspace -q

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> msa-lint: rule catalog"
rules=$(cargo run --offline --release -q -p msa-lint -- --list-rules | wc -l)
echo "msa-lint: $rules rules registered"
if [ "$rules" -lt 16 ]; then
    echo "error: msa-lint catalog shrank to $rules rules (expected >= 16);" \
        "a rule was compiled out" >&2
    exit 1
fi

echo "==> guard: every rule ships a positive and a negative fixture"
cargo run --offline --release -q -p msa-lint -- --list-rules | while read -r id _; do
    stem=$(echo "$id" | tr '[:upper:]' '[:lower:]')
    for kind in pos neg; do
        if [ ! -f "crates/lint/tests/fixtures/${stem}_${kind}.rs" ]; then
            echo "error: rule $id has no ${kind} fixture" \
                "(crates/lint/tests/fixtures/${stem}_${kind}.rs)" >&2
            exit 1
        fi
    done
done

echo "==> msa-lint: self-lint (the linter held to its own rules)"
cargo run --offline --release -q -p msa-lint -- crates/lint/src/*.rs

echo "==> msa-lint --workspace (JSON artifact: results/LINT_report.json)"
cargo run --offline --release -q -p msa-lint -- --workspace --json results/LINT_report.json

echo "==> differential battery (reduced matrix)"
# The full {shards} x {faults} x {guard} x {crash points} matrix runs in
# the workspace test step above; this re-runs the sharded-vs-serial
# battery at the reduced CI matrix to prove the MSA_SCALE knob works.
MSA_SCALE=0.05 timeout 900 cargo test --offline -q --test differential

echo "==> supervision drill matrix (reduced matrix)"
# {panic, stall, poison} x {shards} x {guard on/off}: each cell must be
# deterministic across two runs and, where replay covers the outage,
# bit-identical to the fault-free serial run.
MSA_SCALE=0.05 timeout 900 cargo test --offline -q --test supervision

echo "==> bound-soundness battery (reduced matrix)"
# {shards} x {loss, dup, burst} x {panic, stall, poison} x {crash
# points}: every guaranteed interval must contain the fault-free true
# count, bit-identically across two seeded runs.
MSA_SCALE=0.05 timeout 900 cargo test --offline -q --test bounds

echo "==> vectorization battery (reduced matrix)"
# {scalar, chunked} x {chunk sizes} x {shards} x {faults} x {crash
# points}: chunked ingestion must be bit-identical to the per-record
# oracle in every cell — reports, per-epoch results, bounds, snapshots
# and WAL encodings.
MSA_SCALE=0.05 timeout 900 cargo test --offline -q --test vectorized

echo "==> adaptive-runtime battery (reduced matrix)"
# {static, adaptive} x {drift kinds} x {shards} x {crash during swap}:
# closed-epoch outputs must be bit-identical across two runs in every
# cell, and identical modulo the swap ledger between static and
# adaptive in lossless cells; includes the forced-rollback drill.
MSA_SCALE=0.05 timeout 900 cargo test --offline -q --test adaptive

echo "==> replan-swap bench (reduced scale)"
# Swap pause (in records), before/after throughput and collision rate;
# two-run determinism is asserted inside the bench. The committed
# full-scale JSON is restored afterwards.
MSA_SCALE=0.05 timeout 900 cargo run --offline --release -q -p msa-bench --bin replan_swap
git checkout -- results/BENCH_replan_swap.json 2>/dev/null || true

echo "==> chunk-throughput bench (reduced scale)"
# Single-shard chunked-vs-scalar ingestion; in-bench determinism gate
# (two runs per path, chunked == scalar bit for bit). The >= 2x speedup
# bar is asserted only at MSA_SCALE=1, so the reduced run checks
# correctness and artifact plumbing; the committed full-scale JSON is
# restored afterwards.
MSA_SCALE=0.05 timeout 900 cargo run --offline --release -q -p msa-bench --bin chunk_throughput
git checkout -- results/BENCH_chunk_throughput.json 2>/dev/null || true
if [ ! -s results/BENCH_chunk_throughput.json ]; then
    echo "error: results/BENCH_chunk_throughput.json missing or empty" >&2
    exit 1
fi

echo "==> degraded-accuracy bench (reduced scale)"
# Width-vs-error soundness and two-run interval determinism are
# asserted inside the bench; the committed full-scale JSON is restored
# afterwards so the reduced run never clobbers the published numbers.
MSA_SCALE=0.05 timeout 900 cargo run --offline --release -q -p msa-bench --bin degraded_accuracy
git checkout -- results/BENCH_degraded_accuracy.json 2>/dev/null || true

echo "==> durability drill (reduced matrix)"
# {bit-flip, truncation, torn write, ENOSPC, EIO, crash-between-ops,
# lying fsync} x {snapshot, WAL segment, manifest pair} plus the
# DiskBackend kill-between-syscalls sweep: every cell must end in
# bit-identical recovery or an explicit accounted fallback, twice.
MSA_SCALE=0.05 timeout 900 cargo test --offline -q --test recovery

echo "==> checkpoint-durability bench (reduced scale)"
# Durable-disk overhead vs the in-memory twin and cold-start (open +
# scrub + rebuild) latency per checkpoint density; functional two-run
# determinism is asserted inside the bench. The committed full-scale
# JSON is restored afterwards.
MSA_SCALE=0.05 timeout 900 cargo run --offline --release -q -p msa-bench --bin checkpoint_durability
git checkout -- results/BENCH_durability.json 2>/dev/null || true
if [ ! -s results/BENCH_durability.json ]; then
    echo "error: results/BENCH_durability.json missing or empty" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "CI OK"
